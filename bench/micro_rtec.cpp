// Microbenchmarks (ablation): the RTEC substrate — interval algebra and the
// maximal-interval sweep — whose cost underlies every recognition query —
// plus end-to-end windowed CE recognition under the naive vs incremental
// engine (the `engine` axis: arg 0 = naive, 1 = incremental). Supports the
// design choices of flat sorted interval lists and dirty-key caching
// (DESIGN.md).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "common/rng.h"
#include "fig11_common.h"
#include "rtec/interval.h"
#include "rtec/timeline.h"

// Heap-allocation counting: the arena/SoA work is judged not only on time but
// on per-slide allocator traffic, so this binary replaces global operator
// new/delete with counting wrappers. Sanitizer builds provide their own
// operator new; keep the counters but report zero there (the interposition is
// skipped, see kAllocCountingActive).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MARITIME_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define MARITIME_BENCH_COUNT_ALLOCS 0
#else
#define MARITIME_BENCH_COUNT_ALLOCS 1
#endif
#else
#define MARITIME_BENCH_COUNT_ALLOCS 1
#endif

namespace maritime::bench {
std::atomic<uint64_t> g_heap_allocs{0};
inline constexpr bool kAllocCountingActive = MARITIME_BENCH_COUNT_ALLOCS != 0;
}  // namespace maritime::bench

#if MARITIME_BENCH_COUNT_ALLOCS
// The replaced operators pair new->malloc with delete->free by construction;
// GCC's mismatched-new-delete heuristic cannot see that pairing.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  maritime::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, std::align_val_t align) {
  maritime::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align), size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif  // MARITIME_BENCH_COUNT_ALLOCS

namespace maritime::rtec {
namespace {

IntervalList MakeList(Rng& rng, int n) {
  // Spread the domain with n so the normalized list really contains O(n)
  // disjoint intervals (a fixed domain would coalesce everything).
  const Timestamp domain = static_cast<Timestamp>(n) * 400;
  IntervalList out;
  for (int i = 0; i < n; ++i) {
    const Timestamp a = rng.NextInt(0, domain - 2);
    const Timestamp b = a + rng.NextInt(1, 100);
    out.push_back(Interval{a, b});
  }
  NormalizeIntervals(&out);
  return out;
}

void BM_Normalize(benchmark::State& state) {
  Rng rng(1);
  const int n = static_cast<int>(state.range(0));
  IntervalList raw;
  for (int i = 0; i < n; ++i) {
    const Timestamp a = rng.NextInt(0, 100000);
    raw.push_back(Interval{a, a + rng.NextInt(1, 500)});
  }
  for (auto _ : state) {
    IntervalList copy = raw;
    NormalizeIntervals(&copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Normalize)->Arg(16)->Arg(256)->Arg(4096);

void BM_UnionAll(benchmark::State& state) {
  Rng rng(2);
  std::vector<IntervalList> lists;
  for (int i = 0; i < 8; ++i) {
    lists.push_back(MakeList(rng, static_cast<int>(state.range(0))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(UnionAll(lists));
  }
}
BENCHMARK(BM_UnionAll)->Arg(16)->Arg(256)->Arg(4096);

void BM_IntersectAll(benchmark::State& state) {
  Rng rng(3);
  std::vector<IntervalList> lists = {
      MakeList(rng, static_cast<int>(state.range(0))),
      MakeList(rng, static_cast<int>(state.range(0)))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectAll(lists));
  }
}
BENCHMARK(BM_IntersectAll)->Arg(16)->Arg(256)->Arg(4096);

void BM_RelativeComplement(benchmark::State& state) {
  Rng rng(4);
  const IntervalList base = MakeList(rng, static_cast<int>(state.range(0)));
  const std::vector<IntervalList> cut = {
      MakeList(rng, static_cast<int>(state.range(0)))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RelativeComplementAll(base, cut));
  }
}
BENCHMARK(BM_RelativeComplement)->Arg(16)->Arg(256)->Arg(4096);

void BM_HoldsAt(benchmark::State& state) {
  Rng rng(5);
  const IntervalList list =
      MakeList(rng, static_cast<int>(state.range(0)));
  Timestamp t = 0;
  for (auto _ : state) {
    t = (t + 7919) % 1000000;
    benchmark::DoNotOptimize(HoldsAt(list, t));
  }
}
BENCHMARK(BM_HoldsAt)->Arg(16)->Arg(4096);

void BM_ComputeSimpleFluent(benchmark::State& state) {
  Rng rng(6);
  FluentEvidence ev;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    ev.initiations.push_back({kTrue, rng.NextInt(1, 100000)});
    ev.terminations.push_back({kTrue, rng.NextInt(1, 100000)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSimpleFluent(ev, 0, 100000));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_ComputeSimpleFluent)->Arg(16)->Arg(256)->Arg(4096);

/// End-to-end windowed recognition over the fig-11a ME stream: ω=6h, β=1h
/// (overlap 5/6, the paper's steady-fleet regime). One iteration replays the
/// whole stream through a fresh recognizer — Recognize() per slide, feeding
/// excluded from nothing (the feed cost is negligible next to recognition).
/// Arg: 0 = naive engine, 1 = incremental (dirty-key caching across slides),
/// 2 = auto (window-shape resolution — incremental at ω=6β — plus adaptive
/// full-regeneration escalation on dirty-heavy slides). The
/// incremental/naive items_per_second ratio is the recognition-throughput
/// speedup; the `hit_rate` counter reports incremental cache reuse.
void BM_CERecognitionWindow(benchmark::State& state) {
  static const bench::Fig11Workload* workload = [] {
    return new bench::Fig11Workload(
        bench::MakeFig11Workload(/*base_vessels=*/100, /*duration=*/12 * kHour));
  }();
  const int engine_axis = static_cast<int>(state.range(0));
  const bool incremental = engine_axis == 1;
  const bench::Fig11Workload& w = *workload;
  double hits = 0.0;
  double lookups = 0.0;
  size_t queries = 0;
  uint64_t recognize_allocs = 0;
  uint64_t arena_bytes = 0;
  uint64_t arena_slides = 0;
  uint64_t arena_chunks = 0;
  uint64_t fallback_allocs = 0;
  uint64_t adaptive_full_regens = 0;
  for (auto _ : state) {
    surveillance::RecognizerConfig cfg;
    cfg.window = stream::WindowSpec{6 * kHour, kHour};
    cfg.ce.enable_adrift = false;
    cfg.incremental = incremental;
    if (engine_axis == 2) cfg.engine = surveillance::EngineMode::kAuto;
    surveillance::CERecognizer rec(&w.data.world.knowledge, cfg);
    size_t cursor = 0;
    size_t recognized = 0;
    for (Timestamp q = kHour; q <= w.horizon; q += kHour) {
      while (cursor < w.criticals.size() && w.criticals[cursor].tau <= q) {
        rec.Feed(w.criticals[cursor]);
        ++cursor;
      }
      const uint64_t allocs_before =
          bench::g_heap_allocs.load(std::memory_order_relaxed);
      const RecognitionResult r = rec.Recognize(q);
      recognize_allocs += bench::g_heap_allocs.load(std::memory_order_relaxed) -
                          allocs_before;
      recognized += r.events.size() + r.fluents.size();
      ++queries;
    }
    benchmark::DoNotOptimize(recognized);
    const EngineCacheStats& stats = rec.engine().cache_stats();
    hits += static_cast<double>(stats.hits);
    lookups += static_cast<double>(stats.hits + stats.misses);
    const EngineAllocStats& alloc = rec.engine().alloc_stats();
    arena_bytes += alloc.arena_bytes;
    arena_slides += alloc.slides;
    arena_chunks = std::max(arena_chunks, alloc.arena_chunks);
    fallback_allocs += alloc.fallback_allocs;
    adaptive_full_regens += rec.engine().adaptive_full_regens();
  }
  state.SetItemsProcessed(static_cast<int64_t>(queries));
  state.counters["hit_rate"] = lookups > 0.0 ? hits / lookups : 0.0;
  // Slide-arena telemetry (EngineAllocStats): how much scratch each slide
  // bumps, how many chunks the reserve holds, and how often a large object
  // fell back to the general heap.
  state.counters["arena_bytes_per_slide"] =
      arena_slides > 0 ? static_cast<double>(arena_bytes) /
                             static_cast<double>(arena_slides)
                       : 0.0;
  state.counters["arena_chunks"] = static_cast<double>(arena_chunks);
  state.counters["arena_fallback_allocs"] = static_cast<double>(fallback_allocs);
  // Heap allocator traffic (operator-new calls) per Recognize, including the
  // RecognitionResult rows handed back to the caller. Zero when the counting
  // interposition is disabled (sanitizer builds).
  state.counters["allocs_per_slide"] =
      bench::kAllocCountingActive && queries > 0
          ? static_cast<double>(recognize_allocs) / static_cast<double>(queries)
          : 0.0;
  state.counters["adaptive_full_regens"] =
      static_cast<double>(adaptive_full_regens);
}
BENCHMARK(BM_CERecognitionWindow)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

/// Pipelined slide execution end to end: the full surveillance pipeline
/// (tracking -> staged spatial facts -> recognition, archival off) over the
/// fig-11a raw position stream on a private work-stealing pool.
/// Args: {pipeline_depth, pool workers}. Depth 1 = strict serial slide
/// execution; depth d >= 2 overlaps slide k's recognition with slide k+1's
/// tracking on the pool's tracker lane. Output is bit-identical across the
/// whole axis (pipeline_pipelined_test); this measures only the wall clock.
void BM_PipelinedSlideExecution(benchmark::State& state) {
  static const bench::Fig11Workload* workload = [] {
    return new bench::Fig11Workload(
        bench::MakeFig11Workload(/*base_vessels=*/100, /*duration=*/12 * kHour));
  }();
  const bench::Fig11Workload& w = *workload;
  const int depth = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  common::ThreadPool pool(workers);
  size_t slides = 0;
  for (auto _ : state) {
    surveillance::PipelineConfig cfg;
    cfg.window = stream::WindowSpec{6 * kHour, kHour};
    cfg.ce.enable_adrift = false;
    cfg.partitions = 2;
    cfg.tracker_shards = workers;
    cfg.archive = false;
    cfg.incremental_recognition = true;
    cfg.pipeline_depth = depth;
    cfg.pool = &pool;
    stream::StreamReplayer replayer(w.data.tuples);
    surveillance::SurveillancePipeline pipeline(&w.data.world.knowledge, cfg);
    pipeline.Run(replayer,
                 [&](const surveillance::SlideReport&) { ++slides; });
  }
  state.SetItemsProcessed(static_cast<int64_t>(slides));
  state.counters["steals"] = static_cast<double>(pool.steal_count());
  state.counters["pinned"] = static_cast<double>(pool.pinned_count());
}
BENCHMARK(BM_PipelinedSlideExecution)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({3, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace maritime::rtec
