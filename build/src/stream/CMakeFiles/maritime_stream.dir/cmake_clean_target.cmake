file(REMOVE_RECURSE
  "libmaritime_stream.a"
)
