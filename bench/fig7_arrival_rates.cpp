// Figure 7: online tracking latency at artificially increased arrival rates
// ρ up to 10,000 positions/sec, with ω = 10 min and β = 1 min.
//
// The paper stresses the tracker "by admitting bigger chunks of data for
// processing at considerably increased arrival rates": the original stream
// is replayed faster than real time, so each one-minute slide delivers
// ρ × 60 positions. We do the same — a long natural stream is consumed in
// wall-minute chunks of the target size and the per-slide processing time
// is measured. Expected shape: latency grows with ρ but the tracker always
// responds well before the next slide, even at 10K positions/sec (600,000
// fresh positions per slide).

#include "bench_common.h"
#include "tracker/compressor.h"
#include "tracker/mobility_tracker.h"

namespace maritime::bench {
namespace {

void Main() {
  PrintHeader("fig7_arrival_rates — tracking latency vs stream arrival rate",
              "Figure 7, EDBT 2015 paper Section 5.1 (omega=10min, beta=1min)");
  // A large fleet over 36 h provides enough positions to feed several
  // 600K-position slides (the paper replays its 6425-vessel stream).
  const BenchStream data = MakeBenchStream(/*base_vessels=*/3000,
                                           /*duration=*/36 * kHour,
                                           /*seed=*/1234);
  std::printf("natural stream: %zu positions from %zu vessels over 36h\n\n",
              data.tuples.size(), data.fleet.size());

  constexpr int kSlides = 10;
  for (const double rho : {1000.0, 2000.0, 5000.0, 10000.0}) {
    const size_t chunk = static_cast<size_t>(rho * 60.0);
    tracker::MobilityTracker tracker;
    tracker::Compressor compressor;
    size_t cursor = 0;
    double total = 0.0;
    double worst = 0.0;
    int slides = 0;
    for (int s = 0; s < kSlides && cursor < data.tuples.size(); ++s) {
      const size_t end = std::min(data.tuples.size(), cursor + chunk);
      const double t0 = NowSeconds();
      std::vector<tracker::CriticalPoint> raw;
      for (size_t i = cursor; i < end; ++i) {
        tracker.Process(data.tuples[i], &raw);
      }
      tracker.AdvanceTo(data.tuples[end - 1].tau, &raw);
      compressor.Compress(std::move(raw), end - cursor);
      const double dt = NowSeconds() - t0;
      total += dt;
      worst = std::max(worst, dt);
      cursor = end;
      ++slides;
    }
    std::printf("  rho=%6.0f pos/s  (%7zu fresh/slide)  avg %8.1f ms/slide  "
                "max %8.1f ms  over %d slides\n",
                rho, chunk, total / std::max(1, slides) * 1e3, worst * 1e3,
                slides);
  }
  std::printf("\nexpected shape (paper): latency grows with the arrival rate "
              "but remains a small fraction of the 60 s slide period even at "
              "10K positions/sec.\n");
}

}  // namespace
}  // namespace maritime::bench

int main() {
  maritime::bench::Main();
  return 0;
}
