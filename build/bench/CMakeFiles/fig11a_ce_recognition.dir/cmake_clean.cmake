file(REMOVE_RECURSE
  "CMakeFiles/fig11a_ce_recognition.dir/fig11a_ce_recognition.cpp.o"
  "CMakeFiles/fig11a_ce_recognition.dir/fig11a_ce_recognition.cpp.o.d"
  "fig11a_ce_recognition"
  "fig11a_ce_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_ce_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
