#include "mod/analytics.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

namespace maritime::mod {

std::vector<VesselTravelStats> ComputeVesselStats(
    const TrajectoryStore& store) {
  std::unordered_map<stream::Mmsi, VesselTravelStats> agg;
  std::unordered_map<stream::Mmsi, Timestamp> last_arrival;
  // Trips are stored in completion order; group per vessel in time order.
  std::unordered_map<stream::Mmsi, std::vector<const Trip*>> by_vessel;
  for (const Trip& t : store.trips()) by_vessel[t.mmsi].push_back(&t);
  for (auto& [mmsi, trips] : by_vessel) {
    std::sort(trips.begin(), trips.end(),
              [](const Trip* a, const Trip* b) {
                return a->start_tau < b->start_tau;
              });
    VesselTravelStats& s = agg[mmsi];
    s.mmsi = mmsi;
    std::set<int32_t> seen_ports;
    Timestamp previous_arrival = kInvalidTimestamp;
    for (const Trip* t : trips) {
      ++s.trips;
      s.total_distance_m += t->distance_m;
      s.total_travel_time += t->TravelTime();
      if (previous_arrival != kInvalidTimestamp &&
          t->start_tau > previous_arrival) {
        s.total_idle_time += t->start_tau - previous_arrival;
      }
      previous_arrival = t->end_tau;
      for (const int32_t port : {t->origin_port, t->destination_port}) {
        if (port >= 0 && seen_ports.insert(port).second) {
          s.visited_ports.push_back(port);
        }
      }
    }
  }
  std::vector<VesselTravelStats> out;
  out.reserve(agg.size());
  for (auto& [mmsi, s] : agg) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(),
            [](const VesselTravelStats& a, const VesselTravelStats& b) {
              return a.mmsi < b.mmsi;
            });
  return out;
}

std::map<Timestamp, uint64_t> DeparturesPerPeriod(const TrajectoryStore& store,
                                                  Duration granularity) {
  std::map<Timestamp, uint64_t> out;
  for (const Trip& t : store.trips()) {
    const Timestamp bucket = (t.start_tau / granularity) * granularity;
    ++out[bucket];
  }
  return out;
}

std::vector<CorridorCell> FrequentCorridors(const TrajectoryStore& store,
                                            double cell_deg, size_t limit) {
  // Cell key -> set of trip indices that crossed it.
  std::map<std::pair<int64_t, int64_t>, std::set<size_t>> cells;
  const auto cell_of = [cell_deg](const geo::GeoPoint& p) {
    return std::make_pair(
        static_cast<int64_t>(std::floor(p.lon / cell_deg)),
        static_cast<int64_t>(std::floor(p.lat / cell_deg)));
  };
  for (size_t i = 0; i < store.trips().size(); ++i) {
    const Trip& t = store.trips()[i];
    for (size_t j = 0; j < t.points.size(); ++j) {
      cells[cell_of(t.points[j].pos)].insert(i);
      // Rasterize long inter-point segments so corridors are continuous.
      if (j + 1 < t.points.size()) {
        const geo::GeoPoint& a = t.points[j].pos;
        const geo::GeoPoint& b = t.points[j + 1].pos;
        const double span =
            std::max(std::fabs(b.lon - a.lon), std::fabs(b.lat - a.lat));
        const int steps = static_cast<int>(span / cell_deg);
        for (int k = 1; k <= steps; ++k) {
          cells[cell_of(geo::Interpolate(
                    a, b, static_cast<double>(k) / (steps + 1)))]
              .insert(i);
        }
      }
    }
  }
  std::vector<CorridorCell> out;
  out.reserve(cells.size());
  for (const auto& [key, trips] : cells) {
    CorridorCell c;
    c.lon = (static_cast<double>(key.first) + 0.5) * cell_deg;
    c.lat = (static_cast<double>(key.second) + 0.5) * cell_deg;
    c.trips = trips.size();
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const CorridorCell& a, const CorridorCell& b) {
              return a.trips > b.trips;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<PeriodicService> DetectPeriodicServices(
    const TrajectoryStore& store, uint64_t min_trips) {
  std::map<std::pair<int32_t, int32_t>, std::vector<Timestamp>> departures;
  for (const Trip& t : store.trips()) {
    if (t.origin_port < 0) continue;
    departures[{t.origin_port, t.destination_port}].push_back(t.start_tau);
  }
  std::vector<PeriodicService> out;
  for (auto& [od, times] : departures) {
    if (times.size() < min_trips) continue;
    std::sort(times.begin(), times.end());
    std::vector<double> headways;
    for (size_t i = 1; i < times.size(); ++i) {
      headways.push_back(static_cast<double>(times[i] - times[i - 1]));
    }
    double mean = 0.0;
    for (const double h : headways) mean += h;
    mean /= static_cast<double>(headways.size());
    double var = 0.0;
    for (const double h : headways) var += (h - mean) * (h - mean);
    var /= static_cast<double>(headways.size());
    PeriodicService s;
    s.origin_port = od.first;
    s.destination_port = od.second;
    s.trips = times.size();
    s.mean_headway = static_cast<Duration>(mean);
    s.headway_cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const PeriodicService& a, const PeriodicService& b) {
              return a.headway_cv < b.headway_cv;
            });
  return out;
}

}  // namespace maritime::mod
