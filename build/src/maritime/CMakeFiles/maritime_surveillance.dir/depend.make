# Empty dependencies file for maritime_surveillance.
# This may be replaced when dependencies are built.
