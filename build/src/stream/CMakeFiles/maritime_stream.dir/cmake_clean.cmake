file(REMOVE_RECURSE
  "CMakeFiles/maritime_stream.dir/csv.cc.o"
  "CMakeFiles/maritime_stream.dir/csv.cc.o.d"
  "CMakeFiles/maritime_stream.dir/replayer.cc.o"
  "CMakeFiles/maritime_stream.dir/replayer.cc.o.d"
  "CMakeFiles/maritime_stream.dir/sliding_window.cc.o"
  "CMakeFiles/maritime_stream.dir/sliding_window.cc.o.d"
  "libmaritime_stream.a"
  "libmaritime_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maritime_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
