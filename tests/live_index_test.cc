#include <gtest/gtest.h>

#include "maritime/live_index.h"

namespace maritime::surveillance {
namespace {

const geo::GeoPoint kCenter{24.0, 37.0};

tracker::CriticalPoint Cp(stream::Mmsi mmsi, geo::GeoPoint pos, Timestamp tau,
                          double speed = 10.0, double heading = 0.0,
                          uint32_t flags = tracker::kTurn) {
  tracker::CriticalPoint cp;
  cp.mmsi = mmsi;
  cp.pos = pos;
  cp.tau = tau;
  cp.flags = flags;
  cp.speed_knots = speed;
  cp.heading_deg = heading;
  return cp;
}

LiveVessel Mv(stream::Mmsi mmsi, geo::GeoPoint pos, double speed,
              double heading) {
  LiveVessel v;
  v.mmsi = mmsi;
  v.pos = pos;
  v.speed_knots = speed;
  v.heading_deg = heading;
  return v;
}

TEST(CpaTest, HeadOnCollisionCourse) {
  // Two ships 10 km apart, closing head-on at 10 kn each (~10.3 m/s
  // relative): CPA distance ~0 in ~970 s.
  const LiveVessel a = Mv(1, kCenter, 10.0, 0.0);
  const LiveVessel b =
      Mv(2, geo::DestinationPoint(kCenter, 0.0, 10000.0), 10.0, 180.0);
  const Encounter e = ComputeCpa(a, b);
  EXPECT_NEAR(e.current_distance_m, 10000.0, 20.0);
  EXPECT_LT(e.cpa_distance_m, 50.0);
  EXPECT_NEAR(static_cast<double>(e.time_to_cpa),
              10000.0 / (2.0 * 10.0 * geo::kKnotsToMps), 15.0);
}

TEST(CpaTest, ParallelSameCourseKeepsDistance) {
  const LiveVessel a = Mv(1, kCenter, 12.0, 90.0);
  const LiveVessel b =
      Mv(2, geo::DestinationPoint(kCenter, 0.0, 3000.0), 12.0, 90.0);
  const Encounter e = ComputeCpa(a, b);
  EXPECT_NEAR(e.cpa_distance_m, 3000.0, 10.0);
  EXPECT_EQ(e.time_to_cpa, 0);
}

TEST(CpaTest, DivergingShipsReportNoFutureCpa) {
  const LiveVessel a = Mv(1, kCenter, 10.0, 270.0);
  const LiveVessel b =
      Mv(2, geo::DestinationPoint(kCenter, 90.0, 5000.0), 10.0, 90.0);
  const Encounter e = ComputeCpa(a, b);
  EXPECT_EQ(e.time_to_cpa, 0);
  EXPECT_NEAR(e.cpa_distance_m, e.current_distance_m, 1.0);
}

TEST(CpaTest, CrossingTracks) {
  // B crosses A's bow: A northbound at 10 kn, B westbound at 10 kn starting
  // 5 km east and 2 km north of A.
  const LiveVessel a = Mv(1, kCenter, 10.0, 0.0);
  const geo::GeoPoint b_pos = geo::DestinationPoint(
      geo::DestinationPoint(kCenter, 90.0, 5000.0), 0.0, 2000.0);
  const LiveVessel b = Mv(2, b_pos, 10.0, 270.0);
  const Encounter e = ComputeCpa(a, b);
  EXPECT_GT(e.time_to_cpa, 0);
  EXPECT_LT(e.cpa_distance_m, e.current_distance_m);
}

class LiveIndexTest : public ::testing::Test {
 protected:
  LiveVesselIndex index_;
};

TEST_F(LiveIndexTest, UpdateAndFind) {
  index_.Update(Cp(7, kCenter, 100, 12.0, 45.0));
  ASSERT_EQ(index_.size(), 1u);
  const LiveVessel* v = index_.Find(7);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->pos, kCenter);
  EXPECT_EQ(v->tau, 100);
  EXPECT_DOUBLE_EQ(v->speed_knots, 12.0);
  EXPECT_EQ(index_.Find(8), nullptr);
}

TEST_F(LiveIndexTest, StaleUpdateIgnoredNewerApplied) {
  index_.Update(Cp(7, kCenter, 100));
  index_.Update(Cp(7, geo::DestinationPoint(kCenter, 0, 5000.0), 50));
  EXPECT_EQ(index_.Find(7)->tau, 100) << "older update ignored";
  const geo::GeoPoint newer = geo::DestinationPoint(kCenter, 0, 9000.0);
  index_.Update(Cp(7, newer, 200));
  EXPECT_EQ(index_.Find(7)->tau, 200);
  EXPECT_EQ(index_.Find(7)->pos, newer);
}

TEST_F(LiveIndexTest, GapFlagTracked) {
  index_.Update(Cp(7, kCenter, 100, 12.0, 0.0, tracker::kGapStart));
  EXPECT_TRUE(index_.Find(7)->in_gap);
  index_.Update(Cp(7, kCenter, 200, 12.0, 0.0, tracker::kGapEnd));
  EXPECT_FALSE(index_.Find(7)->in_gap);
}

TEST_F(LiveIndexTest, EvictSilent) {
  index_.Update(Cp(7, kCenter, 100));
  index_.Update(Cp(8, kCenter, 900));
  index_.EvictSilentSince(500);
  EXPECT_EQ(index_.size(), 1u);
  EXPECT_EQ(index_.Find(7), nullptr);
  EXPECT_NE(index_.Find(8), nullptr);
}

TEST_F(LiveIndexTest, WithinRadius) {
  index_.Update(Cp(1, kCenter, 100));
  index_.Update(Cp(2, geo::DestinationPoint(kCenter, 90.0, 3000.0), 100));
  index_.Update(Cp(3, geo::DestinationPoint(kCenter, 90.0, 30000.0), 100));
  const auto near = index_.Within(kCenter, 5000.0);
  ASSERT_EQ(near.size(), 2u);
  EXPECT_EQ(near[0]->mmsi, 1u);
  EXPECT_EQ(near[1]->mmsi, 2u);
  EXPECT_EQ(index_.Within(kCenter, 100.0).size(), 1u);
}

TEST_F(LiveIndexTest, NearestOrdersByDistance) {
  for (int i = 1; i <= 5; ++i) {
    index_.Update(Cp(static_cast<stream::Mmsi>(i),
                     geo::DestinationPoint(kCenter, 90.0, 2000.0 * i), 100));
  }
  const auto nearest = index_.Nearest(kCenter, 3);
  ASSERT_EQ(nearest.size(), 3u);
  EXPECT_EQ(nearest[0]->mmsi, 1u);
  EXPECT_EQ(nearest[1]->mmsi, 2u);
  EXPECT_EQ(nearest[2]->mmsi, 3u);
  // k larger than the fleet returns everyone.
  EXPECT_EQ(index_.Nearest(kCenter, 50).size(), 5u);
}

TEST_F(LiveIndexTest, NearestFindsFarVessels) {
  // A vessel far outside the first search rings must still be found.
  index_.Update(Cp(1, geo::GeoPoint{10.0, 50.0}, 100));
  const auto nearest = index_.Nearest(kCenter, 1);
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0]->mmsi, 1u);
}

TEST_F(LiveIndexTest, InsideArea) {
  AreaInfo area;
  area.id = 1;
  area.kind = AreaKind::kProtected;
  area.polygon = geo::Polygon::RegularPolygon(kCenter, 4000.0, 8);
  index_.Update(Cp(1, kCenter, 100));
  index_.Update(Cp(2, geo::DestinationPoint(kCenter, 0.0, 10000.0), 100));
  const auto inside = index_.Inside(area);
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_EQ(inside[0]->mmsi, 1u);
}

TEST_F(LiveIndexTest, ApproachingPortQuery) {
  const geo::GeoPoint port = kCenter;
  // Vessel 1: 10 km south, heading north (towards the port).
  index_.Update(Cp(1, geo::DestinationPoint(port, 180.0, 10000.0), 100,
                   12.0, 0.0));
  // Vessel 2: 10 km south, heading south (away).
  index_.Update(Cp(2, geo::DestinationPoint(port, 180.0, 10000.0), 100,
                   12.0, 180.0));
  // Vessel 3: close but anchored.
  index_.Update(Cp(3, geo::DestinationPoint(port, 90.0, 5000.0), 100, 0.2,
                   0.0));
  // Vessel 4: heading toward the port but silent (gap).
  index_.Update(Cp(4, geo::DestinationPoint(port, 0.0, 10000.0), 100, 12.0,
                   180.0, tracker::kGapStart));
  const auto approaching = index_.Approaching(port, 20000.0);
  ASSERT_EQ(approaching.size(), 1u);
  EXPECT_EQ(approaching[0]->mmsi, 1u);
}

TEST_F(LiveIndexTest, CollisionScreenFlagsConvergingPair) {
  // Head-on pair 8 km apart.
  index_.Update(Cp(1, kCenter, 100, 12.0, 0.0));
  index_.Update(Cp(2, geo::DestinationPoint(kCenter, 0.0, 8000.0), 100,
                   12.0, 180.0));
  // A bystander sailing away.
  index_.Update(Cp(3, geo::DestinationPoint(kCenter, 90.0, 9000.0), 100,
                   12.0, 90.0));
  const auto encounters = index_.CollisionScreen(
      /*cpa_threshold_m=*/500.0, /*horizon_s=*/kHour);
  ASSERT_EQ(encounters.size(), 1u);
  EXPECT_EQ(encounters[0].a, 1u);
  EXPECT_EQ(encounters[0].b, 2u);
  EXPECT_LT(encounters[0].cpa_distance_m, 500.0);
}

TEST_F(LiveIndexTest, CollisionScreenSkipsStoppedAndGapped) {
  index_.Update(Cp(1, kCenter, 100, 0.2, 0.0));  // anchored
  index_.Update(Cp(2, geo::DestinationPoint(kCenter, 0.0, 2000.0), 100,
                   12.0, 180.0, tracker::kGapStart));  // silent
  EXPECT_TRUE(index_.CollisionScreen(1000.0, kHour).empty());
}

}  // namespace
}  // namespace maritime::surveillance
