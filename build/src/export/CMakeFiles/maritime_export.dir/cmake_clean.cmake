file(REMOVE_RECURSE
  "CMakeFiles/maritime_export.dir/geojson.cc.o"
  "CMakeFiles/maritime_export.dir/geojson.cc.o.d"
  "CMakeFiles/maritime_export.dir/kml.cc.o"
  "CMakeFiles/maritime_export.dir/kml.cc.o.d"
  "libmaritime_export.a"
  "libmaritime_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maritime_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
