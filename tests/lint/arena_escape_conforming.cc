// maritime-lint fixture: conforming cases for the arena-escape rule,
// including the negative test that certified escapes are accepted.
#include "common/annotations.h"

namespace fixtures {

class MARITIME_ARENA_SCOPED SlideView {
 public:
  const int* data = nullptr;
};

/// Members of another arena-scoped type stay in slide scope: no escape.
struct MARITIME_ARENA_SCOPED SlideFrame {
  SlideView view;
  int depth = 0;
};

/// A certified member escape: the stored value is heap-backed by
/// construction (copy-out at commit), so outliving the slide is sound.
struct CommittedRow {
  MARITIME_ARENA_ESCAPE_OK SlideView snapshot;
  int row = 0;
};

/// A certified return escape across the commit boundary.
MARITIME_ARENA_ESCAPE_OK SlideView CommitView(const SlideView& scratch);

/// Plain value types pass untouched.
int CountRows();

}  // namespace fixtures
