#include "maritime/me_stream.h"

#include <algorithm>

namespace maritime::surveillance {

MaritimeSchema MaritimeSchema::Declare(rtec::Engine& engine) {
  MaritimeSchema s;
  s.gap = engine.DeclareEvent("gap");
  s.gap_end = engine.DeclareEvent("gapEnd");
  s.turn = engine.DeclareEvent("turn");
  s.speed_change = engine.DeclareEvent("speedChange");
  s.slow_motion = engine.DeclareEvent("slowMotion");
  s.stop_start = engine.DeclareEvent("stopStart");
  s.stop_end = engine.DeclareEvent("stopEnd");
  s.slow_start = engine.DeclareEvent("slowStart");
  s.slow_end = engine.DeclareEvent("slowEnd");
  s.close_fact = engine.DeclareEvent("close");
  s.stopped = engine.DeclareFluent("stopped");
  s.low_speed = engine.DeclareFluent("lowSpeed");
  s.suspicious = engine.DeclareFluent("suspicious");
  s.illegal_fishing = engine.DeclareFluent("illegalFishing");
  s.illegal_shipping = engine.DeclareEvent("illegalShipping");
  s.dangerous_shipping = engine.DeclareEvent("dangerousShipping");
  s.adrift = engine.DeclareFluent("adrift");
  return s;
}

uint64_t FeedCriticalPoint(rtec::Engine& engine, const MaritimeSchema& schema,
                           const tracker::CriticalPoint& cp) {
  const rtec::Term vessel = VesselTerm(cp.mmsi);
  engine.AssertCoord(vessel, cp.tau, cp.pos);
  uint64_t asserted = 0;
  const auto assert_event = [&](rtec::EventId e) {
    engine.AssertEvent(e, vessel, cp.tau);
    ++asserted;
  };
  if (cp.Has(tracker::kGapStart)) assert_event(schema.gap);
  if (cp.Has(tracker::kGapEnd)) assert_event(schema.gap_end);
  if (cp.Has(tracker::kTurn) || cp.Has(tracker::kSmoothTurn)) {
    assert_event(schema.turn);
  }
  if (cp.Has(tracker::kSpeedChange)) assert_event(schema.speed_change);
  if (cp.Has(tracker::kStopStart)) assert_event(schema.stop_start);
  if (cp.Has(tracker::kStopEnd)) assert_event(schema.stop_end);
  if (cp.Has(tracker::kSlowMotionStart)) {
    assert_event(schema.slow_start);
    // The instantaneous slowMotion ME of rules (4) and (6) fires once per
    // episode, at its detection.
    assert_event(schema.slow_motion);
  }
  if (cp.Has(tracker::kSlowMotionEnd)) assert_event(schema.slow_end);
  return asserted;
}

void SpatialFactTable::AddFactGroup(stream::Mmsi mmsi, Timestamp t,
                                    std::vector<int32_t> areas) {
  std::sort(areas.begin(), areas.end());
  fact_count_ += areas.size();
  auto& vec = groups_[mmsi];
  Group g{t, std::move(areas)};
  if (!vec.empty() && vec.back().t > t) {
    // Delayed fact group: keep per-vessel order.
    const auto pos = std::partition_point(
        vec.begin(), vec.end(),
        [t](const Group& existing) { return existing.t <= t; });
    vec.insert(pos, std::move(g));
  } else {
    vec.push_back(std::move(g));
  }
}

std::vector<int32_t> SpatialFactTable::AreasCloseAt(stream::Mmsi mmsi,
                                                    Timestamp t) const {
  const auto it = groups_.find(mmsi);
  if (it == groups_.end()) return {};
  const auto& vec = it->second;
  const auto pos = std::partition_point(
      vec.begin(), vec.end(), [t](const Group& g) { return g.t <= t; });
  if (pos == vec.begin()) return {};
  return (pos - 1)->areas;
}

bool SpatialFactTable::IsCloseAt(stream::Mmsi mmsi, int32_t area,
                                 Timestamp t) const {
  const auto it = groups_.find(mmsi);
  if (it == groups_.end()) return false;
  const auto& vec = it->second;
  const auto pos = std::partition_point(
      vec.begin(), vec.end(), [t](const Group& g) { return g.t <= t; });
  if (pos == vec.begin()) return false;
  const auto& areas = (pos - 1)->areas;
  return std::binary_search(areas.begin(), areas.end(), area);
}

bool SpatialFactTable::ConstantCloseOver(stream::Mmsi mmsi, int32_t area,
                                         Timestamp from, Timestamp upto,
                                         bool* close) const {
  // Beyond this many in-force groups, classification costs more than the
  // caller's exact per-time fallback would.
  constexpr int kMaxGroups = 8;
  *close = false;
  const auto it = groups_.find(mmsi);
  if (it == groups_.end()) return true;
  const auto& vec = it->second;
  auto pos = std::partition_point(
      vec.begin(), vec.end(), [from](const Group& g) { return g.t <= from; });
  bool have = false;
  bool val = false;
  if (pos == vec.begin()) {
    // No group in force at `from`: IsCloseAt answers false until the first
    // group takes effect.
    have = true;
  } else {
    --pos;
  }
  int scanned = 0;
  for (; pos != vec.end() && pos->t <= upto; ++pos) {
    if (++scanned > kMaxGroups) return false;
    const bool c =
        std::binary_search(pos->areas.begin(), pos->areas.end(), area);
    if (!have) {
      have = true;
      val = c;
    } else if (c != val) {
      return false;
    }
  }
  *close = have && val;
  return true;
}

void SpatialFactTable::AreasCoveringFrom(stream::Mmsi mmsi, Timestamp from,
                                         std::vector<int32_t>* out) const {
  out->clear();
  const auto it = groups_.find(mmsi);
  if (it == groups_.end()) return;
  const auto& vec = it->second;
  // First group after `from`, stepped back once to include the group in
  // force throughout [from, next group): the same boundary-inclusive walk
  // as the engine's coord covering.
  auto pos = std::partition_point(
      vec.begin(), vec.end(), [from](const Group& g) { return g.t <= from; });
  if (pos != vec.begin()) --pos;
  for (; pos != vec.end(); ++pos) {
    out->insert(out->end(), pos->areas.begin(), pos->areas.end());
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void SpatialFactTable::PurgeBefore(Timestamp cutoff) {
  // Retain the latest group at or before the cutoff as the vessel's boundary
  // fact group, mirroring the engine's last-known-position inertia for
  // coords: older groups are shadowed by it for every query at t > cutoff,
  // so purging never changes AreasCloseAt/IsCloseAt answers inside the
  // window (which keeps incremental caches valid across slides).
  for (auto& [mmsi, vec] : groups_) {
    const auto pos = std::partition_point(
        vec.begin(), vec.end(),
        [cutoff](const Group& g) { return g.t <= cutoff; });
    if (pos - vec.begin() <= 1) continue;
    for (auto g = vec.begin(); g != pos - 1; ++g) {
      fact_count_ -= g->areas.size();
    }
    vec.erase(vec.begin(), pos - 1);
  }
}

}  // namespace maritime::surveillance
