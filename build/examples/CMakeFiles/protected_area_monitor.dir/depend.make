# Empty dependencies file for protected_area_monitor.
# This may be replaced when dependencies are built.
