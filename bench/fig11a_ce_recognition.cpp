// Figure 11(a): complex event recognition time as a function of the window
// range ω ∈ {1,2,6,9} h (slide β = 1 h), for one processor and for two
// processors recognizing the west/east halves of the monitored region in
// parallel. Spatial relations (the `close` predicate) are computed
// on demand during recognition — RTEC combines event pattern matching with
// atemporal spatial reasoning.
//
// Expected shape (paper): recognition time grows with ω (more MEs in the
// working memory); two processors roughly halve it; all configurations stay
// comfortably within the 1 h slide, i.e. real-time capable.

#include "fig11_common.h"

int main() {
  maritime::bench::PrintHeader(
      "fig11a_ce_recognition — CE recognition vs window range (on-demand "
      "spatial reasoning)",
      "Figure 11(a), EDBT 2015 paper Section 5.2");
  maritime::bench::RunFig11(/*spatial_facts=*/false);
  std::printf("\nexpected shape (paper): time grows with omega; 2 processors "
              "give a significant speedup; e.g. the paper reports 8 s -> 5 s "
              "at omega=6h on real data.\n");
  return 0;
}
