#ifndef MARITIME_COMMON_RESULT_H_
#define MARITIME_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace maritime {

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// could not be produced. Analogous to `absl::StatusOr<T>` / `arrow::Result`.
///
/// Usage:
///   Result<AisMessage> r = DecodePayload(bits);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit on purpose, mirroring StatusOr).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Aborts (assert) if `status.ok()`,
  /// because an OK Result must carry a value.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace maritime

#endif  // MARITIME_COMMON_RESULT_H_
