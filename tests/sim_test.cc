#include <gtest/gtest.h>

#include <set>

#include "ais/scanner.h"
#include "sim/generator.h"
#include "sim/nmea_feed.h"
#include "sim/scenarios.h"
#include "sim/world.h"

namespace maritime::sim {
namespace {

WorldParams SmallWorldParams() {
  WorldParams p;
  p.ports = 8;
  p.protected_areas = 3;
  p.forbidden_fishing_areas = 3;
  p.shallow_areas = 2;
  return p;
}

FleetConfig SmallFleetConfig() {
  FleetConfig cfg;
  cfg.vessels = 20;
  cfg.duration = 6 * kHour;
  cfg.seed = 11;
  return cfg;
}

TEST(WorldTest, BuildsRequestedInventory) {
  const World w = BuildWorld(1, SmallWorldParams());
  EXPECT_EQ(w.ports.size(), 8u);
  // 8 ports + 3 + 3 + 2 special areas.
  EXPECT_EQ(w.knowledge.areas().size(), 16u);
  int protected_n = 0, fishing_n = 0, shallow_n = 0, port_n = 0;
  for (const auto& a : w.knowledge.areas()) {
    switch (a.kind) {
      case surveillance::AreaKind::kProtected:
        ++protected_n;
        break;
      case surveillance::AreaKind::kForbiddenFishing:
        ++fishing_n;
        break;
      case surveillance::AreaKind::kShallow:
        ++shallow_n;
        EXPECT_GT(a.depth_m, 0.0);
        break;
      case surveillance::AreaKind::kPort:
        ++port_n;
        break;
    }
  }
  EXPECT_EQ(protected_n, 3);
  EXPECT_EQ(fishing_n, 3);
  EXPECT_EQ(shallow_n, 2);
  EXPECT_EQ(port_n, 8);
}

TEST(WorldTest, DefaultParamsGiveThirtyFiveSpecialAreas) {
  // The paper's evaluation uses exactly 35 areas.
  const World w = BuildWorld(2);
  int special = 0;
  for (const auto& a : w.knowledge.areas()) {
    if (a.kind != surveillance::AreaKind::kPort) ++special;
  }
  EXPECT_EQ(special, 35);
}

TEST(WorldTest, DeterministicFromSeed) {
  const World a = BuildWorld(42, SmallWorldParams());
  const World b = BuildWorld(42, SmallWorldParams());
  ASSERT_EQ(a.ports.size(), b.ports.size());
  for (size_t i = 0; i < a.ports.size(); ++i) {
    EXPECT_EQ(a.ports[i].center, b.ports[i].center);
  }
}

TEST(WorldTest, AreasInsideExtent) {
  const World w = BuildWorld(3, SmallWorldParams());
  const auto extent = w.params.extent.Expanded(0.2);
  for (const auto& a : w.knowledge.areas()) {
    EXPECT_TRUE(extent.Contains(a.polygon.VertexCentroid()))
        << a.name;
  }
}

TEST(WorldTest, FindPort) {
  const World w = BuildWorld(4, SmallWorldParams());
  ASSERT_NE(w.FindPort(1000), nullptr);
  EXPECT_EQ(w.FindPort(9999), nullptr);
}

TEST(TraceBuilderTest, CruiseKinematics) {
  const auto tuples = TraceBuilder(1, geo::GeoPoint{24, 37}, 0)
                          .Cruise(0.0, 10.0, 10 * kMinute, 60)
                          .Build();
  ASSERT_EQ(tuples.size(), 11u);  // initial report + 10 steps
  // Consecutive reports are one minute and ~308.7 m apart.
  for (size_t i = 1; i < tuples.size(); ++i) {
    EXPECT_EQ(tuples[i].tau - tuples[i - 1].tau, 60);
    EXPECT_NEAR(geo::HaversineMeters(tuples[i - 1].pos, tuples[i].pos),
                10.0 * geo::kKnotsToMps * 60.0, 1.0);
  }
}

TEST(TraceBuilderTest, SilenceDeadReckons) {
  TraceBuilder b(1, geo::GeoPoint{24, 37}, 0);
  b.Cruise(90.0, 10.0, 5 * kMinute, 60).Silence(20 * kMinute);
  const auto& tuples = b.tuples();
  ASSERT_GE(tuples.size(), 2u);
  const auto& resume = tuples.back();
  const auto& before = tuples[tuples.size() - 2];
  EXPECT_EQ(resume.tau - before.tau, 20 * kMinute);
  EXPECT_NEAR(geo::HaversineMeters(before.pos, resume.pos),
              10.0 * geo::kKnotsToMps * 20.0 * 60.0, 2.0);
}

TEST(TraceBuilderTest, MergeTracesSorted) {
  const auto a =
      TraceBuilder(1, geo::GeoPoint{24, 37}, 0).Hold(300, 60).Build();
  const auto b =
      TraceBuilder(2, geo::GeoPoint{25, 38}, 30).Hold(300, 60).Build();
  const auto merged = MergeTraces({a, b});
  EXPECT_EQ(merged.size(), a.size() + b.size());
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                             [](const auto& x, const auto& y) {
                               return x.tau < y.tau;
                             }));
}

class FleetTest : public ::testing::Test {
 protected:
  FleetTest() : world_(BuildWorld(5, SmallWorldParams())) {}
  World world_;
};

TEST_F(FleetTest, GeneratesDeterministically) {
  World w2 = BuildWorld(5, SmallWorldParams());
  FleetSimulator sim1(&world_, SmallFleetConfig());
  FleetSimulator sim2(&w2, SmallFleetConfig());
  const auto s1 = sim1.Generate();
  const auto s2 = sim2.Generate();
  ASSERT_EQ(s1.size(), s2.size());
  ASSERT_FALSE(s1.empty());
  for (size_t i = 0; i < s1.size(); i += 97) {
    EXPECT_EQ(s1[i], s2[i]);
  }
}

TEST_F(FleetTest, StreamPropertiesHold) {
  FleetSimulator sim(&world_, SmallFleetConfig());
  const auto stream = sim.Generate();
  ASSERT_GT(stream.size(), 1000u);
  std::set<stream::Mmsi> vessels;
  for (const auto& t : stream) {
    vessels.insert(t.mmsi);
    EXPECT_TRUE(geo::IsValidPosition(t.pos)) << t;
    EXPECT_GE(t.tau, 0);
    EXPECT_LE(t.tau, SmallFleetConfig().duration + kHour);
  }
  EXPECT_TRUE(std::is_sorted(stream.begin(), stream.end(),
                             [](const auto& a, const auto& b) {
                               return a.tau < b.tau;
                             }));
  // Every vessel registered in the knowledge base.
  for (const stream::Mmsi m : vessels) {
    EXPECT_NE(world_.knowledge.FindVessel(m), nullptr);
  }
  EXPECT_GE(vessels.size(), 15u) << "most of the fleet should report";
}

TEST_F(FleetTest, GroundTruthCountsPopulated) {
  FleetConfig cfg = SmallFleetConfig();
  cfg.vessels = 40;
  cfg.duration = 12 * kHour;
  FleetSimulator sim(&world_, cfg);
  sim.Generate();
  const GroundTruth& gt = sim.ground_truth();
  EXPECT_GT(gt.port_calls, 0u);
  EXPECT_GT(gt.trawl_episodes, 0u);
  EXPECT_GT(gt.intentional_gaps, 0u);
  EXPECT_GT(gt.rendezvous_events, 0u);
}

TEST_F(FleetTest, BehaviorMixRepresented) {
  FleetConfig cfg = SmallFleetConfig();
  cfg.vessels = 60;
  FleetSimulator sim(&world_, cfg);
  std::set<Behavior> behaviors;
  for (const auto& v : sim.fleet()) behaviors.insert(v.behavior);
  EXPECT_GE(behaviors.size(), 5u);
  // Loiter groups carved from the fleet.
  size_t loiterers = 0;
  for (const auto& v : sim.fleet()) {
    if (v.behavior == Behavior::kLoiterer) ++loiterers;
  }
  EXPECT_EQ(loiterers, static_cast<size_t>(cfg.loiter_groups *
                                           cfg.loiter_group_size));
}

TEST_F(FleetTest, NmeaFeedRoundTripsThroughScanner) {
  FleetConfig cfg = SmallFleetConfig();
  cfg.vessels = 5;
  cfg.duration = kHour;
  cfg.gps_noise_m = 0.0;
  cfg.outlier_prob = 0.0;
  cfg.dropout_prob = 0.0;
  FleetSimulator sim(&world_, cfg);
  const auto stream = sim.Generate();
  ASSERT_FALSE(stream.empty());
  const std::string feed = EncodeTaggedNmeaFeed(stream, sim.fleet());
  ais::DataScanner scanner;
  const auto decoded = scanner.ScanTaggedLog(feed);
  ASSERT_EQ(decoded.size(), stream.size());
  for (size_t i = 0; i < decoded.size(); i += 53) {
    EXPECT_EQ(decoded[i].mmsi, stream[i].mmsi);
    EXPECT_EQ(decoded[i].tau, stream[i].tau);
    // AIS coordinates quantize to 1/10000 arc-minute.
    EXPECT_NEAR(decoded[i].pos.lon, stream[i].pos.lon, 2.0 / 600000.0);
    EXPECT_NEAR(decoded[i].pos.lat, stream[i].pos.lat, 2.0 / 600000.0);
  }
  EXPECT_EQ(scanner.stats().framing_errors, 0u);
}

TEST_F(FleetTest, CorruptedFeedLinesAreDropped) {
  FleetConfig cfg = SmallFleetConfig();
  cfg.vessels = 5;
  cfg.duration = kHour;
  FleetSimulator sim(&world_, cfg);
  const auto stream = sim.Generate();
  NmeaFeedOptions opt;
  opt.corrupt_prob = 0.2;
  const std::string feed = EncodeTaggedNmeaFeed(stream, sim.fleet(), opt);
  ais::DataScanner scanner;
  const auto decoded = scanner.ScanTaggedLog(feed);
  EXPECT_LT(decoded.size(), stream.size());
  EXPECT_GT(scanner.stats().framing_errors, 0u);
  // Roughly 20% corrupted.
  const double loss = 1.0 - static_cast<double>(decoded.size()) /
                                static_cast<double>(stream.size());
  EXPECT_NEAR(loss, 0.2, 0.08);
}

}  // namespace
}  // namespace maritime::sim
