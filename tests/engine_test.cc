#include <gtest/gtest.h>

#include "rtec/engine.h"

namespace maritime::rtec {
namespace {

const Term kV1{0, 1};
const Term kV2{0, 2};
const Term kA1{1, 10};

/// Test harness: one input marker-event pair driving a simple boolean fluent
/// `active(V)` (initiated by `on`, terminated by `off`), mirroring how the
/// maritime layer models durative input MEs.
class EngineFixture : public ::testing::Test {
 protected:
  void Init(stream::WindowSpec window) {
    engine_ = std::make_unique<Engine>(window);
    on_ = engine_->DeclareEvent("on");
    off_ = engine_->DeclareEvent("off");
    active_ = engine_->DeclareFluent("active");
    SimpleFluentSpec spec;
    spec.fluent = active_;
    spec.output = true;
    const EventId on = on_;
    const EventId off = off_;
    spec.domain = [on, off](const EvalContext& ctx) {
      std::vector<Term> keys;
      for (const auto& e : ctx.Events(on)) keys.push_back(e.subject);
      for (const auto& e : ctx.Events(off)) keys.push_back(e.subject);
      return keys;
    };
    spec.rules = [on, off](const EvalContext& ctx, Term key,
                           PointVec* initiated,
                           PointVec* terminated) {
      for (const auto& e : ctx.Events(on)) {
        if (e.subject == key) initiated->push_back({kTrue, e.t});
      }
      for (const auto& e : ctx.Events(off)) {
        if (e.subject == key) terminated->push_back({kTrue, e.t});
      }
    };
    engine_->AddSimpleFluent(std::move(spec));
  }

  std::unique_ptr<Engine> engine_;
  EventId on_ = -1;
  EventId off_ = -1;
  FluentId active_ = -1;
};

TEST_F(EngineFixture, BasicRecognition) {
  Init(stream::WindowSpec{100, 100});
  engine_->AssertEvent(on_, kV1, 10);
  engine_->AssertEvent(off_, kV1, 40);
  const RecognitionResult r = engine_->Recognize(100);
  ASSERT_EQ(r.fluents.size(), 1u);
  EXPECT_EQ(r.fluents[0].fluent, active_);
  EXPECT_EQ(r.fluents[0].key, kV1);
  ASSERT_EQ(r.fluents[0].intervals.size(), 1u);
  EXPECT_EQ(r.fluents[0].intervals[0], (Interval{10, 40}));
  EXPECT_EQ(r.input_events_in_window, 2u);
}

TEST_F(EngineFixture, PerSubjectSeparation) {
  Init(stream::WindowSpec{100, 100});
  engine_->AssertEvent(on_, kV1, 10);
  engine_->AssertEvent(on_, kV2, 20);
  engine_->AssertEvent(off_, kV1, 30);
  engine_->Recognize(100);
  EXPECT_EQ(engine_->TimelineOf(active_, kV1).IntervalsFor(kTrue),
            (IntervalList{{10, 30}}));
  EXPECT_EQ(engine_->TimelineOf(active_, kV2).IntervalsFor(kTrue),
            (IntervalList{{20, 100}}));
}

TEST_F(EngineFixture, EventsOutsideWindowDiscarded) {
  Init(stream::WindowSpec{60, 60});
  engine_->AssertEvent(on_, kV1, 10);  // will fall out of the (60,120] window
  const RecognitionResult r = engine_->Recognize(120);
  EXPECT_TRUE(r.fluents.empty());
  EXPECT_EQ(r.input_events_in_window, 0u);
  EXPECT_EQ(engine_->buffered_events(), 0u);
}

TEST_F(EngineFixture, InertiaCarriesAcrossSlides) {
  // ω == β (tumbling): the on-event leaves the working memory, yet the
  // fluent keeps holding by inertia via the boundary record.
  Init(stream::WindowSpec{60, 60});
  engine_->AssertEvent(on_, kV1, 30);
  const RecognitionResult r1 = engine_->Recognize(60);
  ASSERT_EQ(r1.fluents.size(), 1u);
  EXPECT_EQ(r1.fluents[0].intervals[0], (Interval{30, 60}));

  const RecognitionResult r2 = engine_->Recognize(120);
  ASSERT_EQ(r2.fluents.size(), 1u);
  EXPECT_EQ(r2.fluents[0].intervals[0], (Interval{60, 120}))
      << "carried interval spans the whole new window";

  // Termination in a later window closes the carried interval.
  engine_->AssertEvent(off_, kV1, 150);
  const RecognitionResult r3 = engine_->Recognize(180);
  ASSERT_EQ(r3.fluents.size(), 1u);
  EXPECT_EQ(r3.fluents[0].intervals[0], (Interval{120, 150}));

  // And after that, nothing holds.
  const RecognitionResult r4 = engine_->Recognize(240);
  EXPECT_TRUE(r4.fluents.empty());
}

TEST_F(EngineFixture, OverlappingWindowsAmalgamateDelayedEvents) {
  // ω = 120, β = 60. An event occurring at t=70 arrives only after the
  // recognition at Q=120; because the window range exceeds the slide, it is
  // still inside the window at Q=180 and its effects are incorporated
  // (paper Figure 5).
  Init(stream::WindowSpec{120, 60});
  engine_->AssertEvent(on_, kV1, 50);
  const RecognitionResult r1 = engine_->Recognize(120);
  ASSERT_EQ(r1.fluents.size(), 1u);
  EXPECT_EQ(r1.fluents[0].intervals[0], (Interval{50, 120}));

  engine_->AssertEvent(off_, kV1, 70);  // delayed arrival
  const RecognitionResult r2 = engine_->Recognize(180);
  ASSERT_EQ(r2.fluents.size(), 1u);
  EXPECT_EQ(r2.fluents[0].intervals[0], (Interval{60, 70}))
      << "the delayed termination revises the previously open interval";
}

TEST_F(EngineFixture, DelayedEventTooOldIsLost) {
  Init(stream::WindowSpec{60, 60});
  engine_->Recognize(120);
  engine_->AssertEvent(on_, kV1, 100);  // occurred in (60,120], arrives late
  const RecognitionResult r = engine_->Recognize(180);
  // t=100 <= 180-60=120, so it is discarded: information loss by design.
  EXPECT_TRUE(r.fluents.empty());
}

TEST_F(EngineFixture, CoordFluent) {
  Init(stream::WindowSpec{100, 100});
  engine_->AssertCoord(kV1, 10, geo::GeoPoint{24.0, 37.0});
  engine_->AssertCoord(kV1, 50, geo::GeoPoint{24.5, 37.5});
  engine_->Recognize(100);
  const auto at5 = engine_->CoordOf(kV1, 5);
  EXPECT_FALSE(at5.has_value());
  const auto at10 = engine_->CoordOf(kV1, 10);
  ASSERT_TRUE(at10.has_value());
  EXPECT_DOUBLE_EQ(at10->lon, 24.0);
  const auto at60 = engine_->CoordOf(kV1, 60);
  ASSERT_TRUE(at60.has_value());
  EXPECT_DOUBLE_EQ(at60->lon, 24.5);
  EXPECT_FALSE(engine_->CoordOf(kV2, 60).has_value());
}

TEST_F(EngineFixture, DerivedEventsComputedAndWindowed) {
  Init(stream::WindowSpec{100, 100});
  const EventId alarm = engine_->DeclareEvent("alarm");
  DerivedEventSpec spec;
  spec.event = alarm;
  spec.output = true;
  const EventId on = on_;
  spec.compute = [on](const EvalContext& ctx,
                      std::vector<EventInstance>* out) {
    for (const auto& e : ctx.Events(on)) {
      out->push_back(EventInstance{e.subject, kA1, e.t + 5});
      out->push_back(EventInstance{e.subject, kA1, e.t + 500});  // out of window
    }
  };
  engine_->AddDerivedEvent(std::move(spec));
  engine_->AssertEvent(on_, kV1, 10);
  const RecognitionResult r = engine_->Recognize(100);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].event, alarm);
  EXPECT_EQ(r.events[0].instance.t, 15);
  EXPECT_EQ(r.events[0].instance.object, kA1);
}

TEST_F(EngineFixture, StaticFluentFromIntervalAlgebra) {
  Init(stream::WindowSpec{100, 100});
  // idle(V) := complement of active(V) over the window — a statically
  // determined fluent computed by interval manipulation.
  const FluentId idle = engine_->DeclareFluent("idle");
  StaticFluentSpec spec;
  spec.fluent = idle;
  spec.output = true;
  const FluentId active = active_;
  spec.domain = [active](const EvalContext& ctx) {
    return ctx.FluentKeys(active);
  };
  spec.compute = [active](const EvalContext& ctx, Term key,
                          std::map<Value, IntervalList>* out) {
    const IntervalList window{{ctx.window_start(), ctx.query_time()}};
    (*out)[kTrue] = RelativeComplementAll(
        window, {ToList(ctx.Timeline(active, key).IntervalsFor(kTrue))});
  };
  engine_->AddStaticFluent(std::move(spec));

  engine_->AssertEvent(on_, kV1, 20);
  engine_->AssertEvent(off_, kV1, 60);
  const RecognitionResult r = engine_->Recognize(100);
  const FluentTimeline& tl = engine_->TimelineOf(idle, kV1);
  EXPECT_EQ(tl.IntervalsFor(kTrue), (IntervalList{{0, 20}, {60, 100}}));
}

TEST_F(EngineFixture, StartEndEventSemantics) {
  Init(stream::WindowSpec{100, 100});
  engine_->AssertEvent(on_, kV1, 10);
  engine_->AssertEvent(off_, kV1, 40);
  engine_->Recognize(100);
  const FluentTimeline& tl = engine_->TimelineOf(active_, kV1);
  EXPECT_EQ(std::vector<Timestamp>(tl.StartsFor(kTrue).begin(),
                                   tl.StartsFor(kTrue).end()),
            std::vector<Timestamp>{10});
  EXPECT_EQ(std::vector<Timestamp>(tl.EndsFor(kTrue).begin(),
                                   tl.EndsFor(kTrue).end()),
            std::vector<Timestamp>{40});
}

TEST_F(EngineFixture, RecognizeIsRepeatable) {
  Init(stream::WindowSpec{100, 10});
  engine_->AssertEvent(on_, kV1, 95);
  const RecognitionResult a = engine_->Recognize(100);
  const RecognitionResult b = engine_->Recognize(110);
  ASSERT_EQ(a.fluents.size(), 1u);
  ASSERT_EQ(b.fluents.size(), 1u);
  EXPECT_EQ(a.fluents[0].intervals[0], (Interval{95, 100}));
  EXPECT_EQ(b.fluents[0].intervals[0], (Interval{95, 110}));
}

TEST_F(EngineFixture, MultipleEpisodesAcrossWindow) {
  Init(stream::WindowSpec{200, 200});
  engine_->AssertEvent(on_, kV1, 10);
  engine_->AssertEvent(off_, kV1, 20);
  engine_->AssertEvent(on_, kV1, 50);
  engine_->AssertEvent(off_, kV1, 70);
  const RecognitionResult r = engine_->Recognize(200);
  ASSERT_EQ(r.fluents.size(), 1u);
  EXPECT_EQ(r.fluents[0].intervals,
            (IntervalList{{10, 20}, {50, 70}}));
}

TEST(EngineNamesTest, DeclaredNamesAreRetrievable) {
  Engine e(stream::WindowSpec{60, 60});
  const EventId ev = e.DeclareEvent("gap");
  const FluentId fl = e.DeclareFluent("stopped");
  EXPECT_EQ(e.EventName(ev), "gap");
  EXPECT_EQ(e.FluentName(fl), "stopped");
}

}  // namespace
}  // namespace maritime::rtec
