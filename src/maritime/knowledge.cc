#include "maritime/knowledge.h"

#include <cmath>

namespace maritime::surveillance {

std::string_view AreaKindName(AreaKind kind) {
  switch (kind) {
    case AreaKind::kProtected:
      return "protected";
    case AreaKind::kForbiddenFishing:
      return "forbidden_fishing";
    case AreaKind::kShallow:
      return "shallow";
    case AreaKind::kPort:
      return "port";
  }
  return "unknown";
}

std::string_view VesselTypeName(VesselType type) {
  switch (type) {
    case VesselType::kCargo:
      return "cargo";
    case VesselType::kTanker:
      return "tanker";
    case VesselType::kPassenger:
      return "passenger";
    case VesselType::kFishing:
      return "fishing";
    case VesselType::kPleasure:
      return "pleasure";
    case VesselType::kOther:
      return "other";
  }
  return "unknown";
}

KnowledgeBase::KnowledgeBase(double close_threshold_m)
    : close_threshold_m_(close_threshold_m) {}

void KnowledgeBase::AddArea(AreaInfo area) {
  // Margin in degrees generous enough to cover the close threshold at
  // mid-latitudes (1 degree of latitude ~ 111 km).
  const double margin_deg = close_threshold_m_ / 111000.0 * 2.0 + 0.01;
  area_index_[area.id] = areas_.size();
  grid_.Insert(area.id, area.polygon, margin_deg);
  areas_.push_back(std::move(area));
}

void KnowledgeBase::AddVessel(VesselInfo vessel) {
  vessels_[vessel.mmsi] = std::move(vessel);
}

VesselType VesselTypeFromAisCode(int code) {
  if (code == 30) return VesselType::kFishing;
  if (code == 36 || code == 37) return VesselType::kPleasure;
  if (code >= 60 && code <= 69) return VesselType::kPassenger;
  if (code >= 70 && code <= 79) return VesselType::kCargo;
  if (code >= 80 && code <= 89) return VesselType::kTanker;
  return VesselType::kOther;
}

void KnowledgeBase::UpsertVesselStatic(stream::Mmsi mmsi,
                                       const std::string& name,
                                       VesselType type, double draft_m) {
  VesselInfo& v = vessels_[mmsi];
  v.mmsi = mmsi;
  if (!name.empty()) v.name = name;
  v.type = type;
  if (type == VesselType::kFishing) v.fishing_gear = true;
  if (draft_m > 0.0) v.draft_m = draft_m;
}

const AreaInfo* KnowledgeBase::FindArea(int32_t id) const {
  const auto it = area_index_.find(id);
  return it == area_index_.end() ? nullptr : &areas_[it->second];
}

const VesselInfo* KnowledgeBase::FindVessel(stream::Mmsi mmsi) const {
  const auto it = vessels_.find(mmsi);
  return it == vessels_.end() ? nullptr : &it->second;
}

bool KnowledgeBase::Close(const geo::GeoPoint& p, int32_t area_id) const {
  const AreaInfo* area = FindArea(area_id);
  if (area == nullptr) return false;
  return area->polygon.DistanceMeters(p) < close_threshold_m_;
}

std::vector<int32_t> KnowledgeBase::AreasCloseTo(const geo::GeoPoint& p) const {
  std::vector<int32_t> out;
  for (const int32_t id : grid_.Candidates(p)) {
    if (Close(p, id)) out.push_back(id);
  }
  return out;
}

std::vector<int32_t> KnowledgeBase::AreasCloseTo(const geo::GeoPoint& p,
                                                 AreaKind kind) const {
  std::vector<int32_t> out;
  for (const int32_t id : grid_.Candidates(p)) {
    const AreaInfo* area = FindArea(id);
    if (area != nullptr && area->kind == kind && Close(p, id)) {
      out.push_back(id);
    }
  }
  return out;
}

bool KnowledgeBase::IsFishing(stream::Mmsi mmsi) const {
  const VesselInfo* v = FindVessel(mmsi);
  if (v == nullptr) return false;
  return v->fishing_gear || v->type == VesselType::kFishing;
}

bool KnowledgeBase::IsShallowFor(int32_t area_id, stream::Mmsi mmsi) const {
  const AreaInfo* area = FindArea(area_id);
  if (area == nullptr || area->kind != AreaKind::kShallow) return false;
  const VesselInfo* v = FindVessel(mmsi);
  // Unknown vessels get a conservative default draft so alerts still fire.
  const double draft = v != nullptr ? v->draft_m : 3.0;
  return area->depth_m < draft + kUnderKeelClearanceM;
}

const AreaInfo* KnowledgeBase::PortContaining(const geo::GeoPoint& p) const {
  for (const int32_t id : grid_.Candidates(p)) {
    const AreaInfo* area = FindArea(id);
    if (area != nullptr && area->kind == AreaKind::kPort &&
        area->polygon.Contains(p)) {
      return area;
    }
  }
  return nullptr;
}

KnowledgeBase KnowledgeBase::Restricted(
    const std::vector<int32_t>& area_ids) const {
  KnowledgeBase out(close_threshold_m_);
  for (const int32_t id : area_ids) {
    const AreaInfo* area = FindArea(id);
    if (area != nullptr) out.AddArea(*area);
  }
  for (const auto& [mmsi, vessel] : vessels_) out.AddVessel(vessel);
  return out;
}

}  // namespace maritime::surveillance
