file(REMOVE_RECURSE
  "libmaritime_rtec.a"
)
