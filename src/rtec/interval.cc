#include "rtec/interval.h"

#include <algorithm>

#include "common/check.h"

namespace maritime::rtec {

void NormalizeIntervals(IntervalList* list) {
  auto& v = *list;
  v.erase(std::remove_if(v.begin(), v.end(),
                         [](const Interval& i) { return !i.NonEmpty(); }),
          v.end());
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    if (a.since != b.since) return a.since < b.since;
    return a.till < b.till;
  });
  size_t out = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (out > 0 && v[i].since <= v[out - 1].till) {
      // Overlapping or adjacent ((a,b] followed by (b,c]): coalesce.
      v[out - 1].till = std::max(v[out - 1].till, v[i].till);
    } else {
      v[out++] = v[i];
    }
  }
  v.resize(out);
  MARITIME_DCHECK(IsNormalized(v));
}

bool IsNormalized(const IntervalList& list) {
  for (size_t i = 0; i < list.size(); ++i) {
    if (!list[i].NonEmpty()) return false;
    if (i > 0 && list[i].since <= list[i - 1].till) return false;
  }
  return true;
}

bool HoldsAt(const IntervalList& list, Timestamp t) {
  // Last interval with since < t.
  const auto it = std::partition_point(
      list.begin(), list.end(),
      [t](const Interval& i) { return i.since < t; });
  if (it == list.begin()) return false;
  return (it - 1)->till >= t;
}

bool HoldsRightOf(const IntervalList& list, Timestamp t) {
  const auto it = std::partition_point(
      list.begin(), list.end(),
      [t](const Interval& i) { return i.since <= t; });
  if (it == list.begin()) return false;
  return (it - 1)->till > t;
}

IntervalList UnionAll(const std::vector<IntervalList>& lists) {
  IntervalList out;
  for (const auto& l : lists) out.insert(out.end(), l.begin(), l.end());
  NormalizeIntervals(&out);
  return out;
}

IntervalList IntersectAll(const std::vector<IntervalList>& lists) {
  if (lists.empty()) return {};
  IntervalList acc = lists[0];
  NormalizeIntervals(&acc);
  for (size_t k = 1; k < lists.size(); ++k) {
    IntervalList rhs = lists[k];
    NormalizeIntervals(&rhs);
    IntervalList next;
    size_t i = 0, j = 0;
    while (i < acc.size() && j < rhs.size()) {
      const Timestamp lo = std::max(acc[i].since, rhs[j].since);
      const Timestamp hi = std::min(acc[i].till, rhs[j].till);
      if (lo < hi) next.push_back(Interval{lo, hi});
      if (acc[i].till < rhs[j].till) {
        ++i;
      } else {
        ++j;
      }
    }
    acc = std::move(next);
    if (acc.empty()) break;
  }
  MARITIME_DCHECK(IsNormalized(acc));
  return acc;
}

IntervalList RelativeComplementAll(const IntervalList& base,
                                   const std::vector<IntervalList>& subtract) {
  IntervalList cut = UnionAll(subtract);
  IntervalList norm_base = base;
  NormalizeIntervals(&norm_base);
  IntervalList out;
  size_t j = 0;
  for (const Interval& b : norm_base) {
    Timestamp cursor = b.since;
    while (j < cut.size() && cut[j].till <= cursor) ++j;
    size_t k = j;
    while (k < cut.size() && cut[k].since < b.till) {
      if (cut[k].since > cursor) {
        out.push_back(Interval{cursor, cut[k].since});
      }
      cursor = std::max(cursor, cut[k].till);
      if (cursor >= b.till) break;
      ++k;
    }
    if (cursor < b.till) out.push_back(Interval{cursor, b.till});
  }
  NormalizeIntervals(&out);
  return out;
}

IntervalList ClipToWindow(const IntervalList& list, Timestamp lo,
                          Timestamp hi) {
  IntervalList out;
  for (const Interval& i : list) {
    const Interval clipped{std::max(i.since, lo), std::min(i.till, hi)};
    if (clipped.NonEmpty()) out.push_back(clipped);
  }
  NormalizeIntervals(&out);
  return out;
}

Duration TotalLength(const IntervalList& list) {
  Duration total = 0;
  for (const Interval& i : list) total += i.Length();
  return total;
}

}  // namespace maritime::rtec
