
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ais/bit_buffer.cc" "src/ais/CMakeFiles/maritime_ais.dir/bit_buffer.cc.o" "gcc" "src/ais/CMakeFiles/maritime_ais.dir/bit_buffer.cc.o.d"
  "/root/repo/src/ais/messages.cc" "src/ais/CMakeFiles/maritime_ais.dir/messages.cc.o" "gcc" "src/ais/CMakeFiles/maritime_ais.dir/messages.cc.o.d"
  "/root/repo/src/ais/nmea.cc" "src/ais/CMakeFiles/maritime_ais.dir/nmea.cc.o" "gcc" "src/ais/CMakeFiles/maritime_ais.dir/nmea.cc.o.d"
  "/root/repo/src/ais/scanner.cc" "src/ais/CMakeFiles/maritime_ais.dir/scanner.cc.o" "gcc" "src/ais/CMakeFiles/maritime_ais.dir/scanner.cc.o.d"
  "/root/repo/src/ais/sixbit.cc" "src/ais/CMakeFiles/maritime_ais.dir/sixbit.cc.o" "gcc" "src/ais/CMakeFiles/maritime_ais.dir/sixbit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/maritime_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/maritime_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
