# Empty dependencies file for maritime_common.
# This may be replaced when dependencies are built.
