#!/usr/bin/env python3
"""Clang Static Analyzer gate (`clang --analyze`) with a committed baseline.

Runs the analyzer over every translation unit in compile_commands.json and
compares the findings against tools/lint/scan_build_baseline.txt. The build
fails only on NEW findings: pre-existing ones are suppressed by the baseline,
so the gate can be adopted without first driving the tree to zero.

Findings are normalized to `path: message [checker]` — no line/column — so
unrelated edits above a known finding do not churn the baseline.

Usage:
  tools/lint/run_clang_analyze.py [-p build] [--strict] [--update]

Exit codes: 0 clean (or analyzer unavailable without --strict), 1 new
findings, 2 configuration error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "scan_build_baseline.txt")

_FINDING_RE = re.compile(
    r"^(?P<path>[^:\n]+):\d+:\d+:\s+warning:\s+(?P<msg>.*?)"
    r"\s*(?P<checker>\[[\w.,-]+\])?$")


def find_clang() -> str | None:
    for name in ("clang++", "clang", "clang++-18", "clang++-17",
                 "clang++-16", "clang++-15", "clang++-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compdb(build_dir: str) -> list[dict] | None:
    path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError:
        return None


def analyze_args(entry: dict) -> tuple[str, list[str]]:
    """(source file, compile flags) with -c/-o/compiler stripped."""
    if "arguments" in entry:
        raw = list(entry["arguments"])
    else:
        # Naive shlex is fine: CMake writes plain flags.
        import shlex
        raw = shlex.split(entry["command"])
    src = entry["file"]
    args: list[str] = []
    skip = False
    for a in raw[1:]:
        if skip:
            skip = False
            continue
        if a in ("-c", src):
            continue
        if a == "-o":
            skip = True
            continue
        args.append(a)
    return src, args


def run_analyzer(clang: str, compdb: list[dict]) -> list[str]:
    findings: set[str] = set()
    for entry in compdb:
        src = entry["file"]
        rel = os.path.relpath(src, REPO_ROOT)
        if rel.startswith("..") or not rel.startswith("src" + os.sep):
            continue
        _, args = analyze_args(entry)
        cmd = [clang, "--analyze", "--analyzer-output", "text",
               *args, src]
        proc = subprocess.run(cmd, cwd=entry.get("directory", REPO_ROOT),
                              capture_output=True, text=True, check=False)
        for line in proc.stderr.splitlines():
            m = _FINDING_RE.match(line.strip())
            if not m:
                continue
            path = os.path.relpath(m.group("path"), REPO_ROOT)
            if path.startswith(".."):
                continue  # finding in a system/third-party header
            checker = m.group("checker") or ""
            findings.add(f"{path}: {m.group('msg')} {checker}".rstrip())
    return sorted(findings)


def load_baseline() -> set[str]:
    try:
        with open(BASELINE, encoding="utf-8") as f:
            return {line.strip() for line in f
                    if line.strip() and not line.startswith("#")}
    except OSError:
        return set()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("-p", "--build-dir",
                    default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument("--strict", action="store_true",
                    help="fail when the analyzer or compile_commands.json "
                         "is unavailable; for CI")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline with the current findings")
    args = ap.parse_args(argv)

    clang = find_clang()
    if clang is None:
        print("clang-analyze: no clang in PATH", file=sys.stderr)
        if args.strict:
            return 2
        print("clang-analyze: SKIPPED", file=sys.stderr)
        return 0
    compdb = load_compdb(args.build_dir)
    if compdb is None:
        print(f"clang-analyze: no compile_commands.json under "
              f"{args.build_dir} (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        return 2 if args.strict else 0

    findings = run_analyzer(clang, compdb)
    if args.update:
        with open(BASELINE, "w", encoding="utf-8") as f:
            f.write("# Clang Static Analyzer baseline — pre-existing "
                    "findings suppressed by run_clang_analyze.py.\n"
                    "# Regenerate with: tools/lint/run_clang_analyze.py "
                    "--update\n")
            for item in findings:
                f.write(item + "\n")
        print(f"clang-analyze: baseline updated ({len(findings)} findings)")
        return 0

    baseline = load_baseline()
    new = [f for f in findings if f not in baseline]
    fixed = sorted(baseline - set(findings))
    for f in new:
        print(f"NEW: {f}")
    if fixed:
        print(f"clang-analyze: {len(fixed)} baseline finding(s) no longer "
              "reported — consider --update", file=sys.stderr)
    if new:
        print(f"clang-analyze: {len(new)} new finding(s) "
              f"({len(findings)} total, {len(baseline)} baselined)",
              file=sys.stderr)
        return 1
    print(f"clang-analyze: clean ({len(findings)} baselined finding(s), "
          f"{len(compdb)} TUs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
