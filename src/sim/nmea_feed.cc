#include "sim/nmea_feed.h"

#include <unordered_map>

#include "ais/messages.h"
#include "common/rng.h"
#include "common/strings.h"

namespace maritime::sim {

std::string EncodeTaggedNmeaFeed(
    const std::vector<stream::PositionTuple>& tuples,
    const std::vector<SimVessel>& fleet, const NmeaFeedOptions& options) {
  std::unordered_map<stream::Mmsi, const SimVessel*> by_mmsi;
  for (const SimVessel& v : fleet) by_mmsi[v.info.mmsi] = &v;
  Rng rng(options.seed);
  std::string out;
  int sequence = 0;
  std::unordered_map<stream::Mmsi, int> reports_since_static;
  const auto ais_ship_type = [](surveillance::VesselType type) {
    switch (type) {
      case surveillance::VesselType::kFishing:
        return 30;
      case surveillance::VesselType::kPleasure:
        return 37;
      case surveillance::VesselType::kPassenger:
        return 60;
      case surveillance::VesselType::kCargo:
        return 70;
      case surveillance::VesselType::kTanker:
        return 80;
      case surveillance::VesselType::kOther:
        return 90;
    }
    return 90;
  };
  for (const auto& t : tuples) {
    ais::PositionReport report;
    report.mmsi = t.mmsi;
    report.lon_deg = t.pos.lon;
    report.lat_deg = t.pos.lat;
    report.utc_second = static_cast<int>(t.tau % 60);
    const auto it = by_mmsi.find(t.mmsi);
    const bool class_b = it != by_mmsi.end() && it->second->class_b;
    if (class_b) {
      report.type = rng.NextBool(options.extended_class_b_prob)
                        ? ais::MessageType::kExtendedClassB
                        : ais::MessageType::kStandardClassB;
      if (report.type == ais::MessageType::kExtendedClassB &&
          it != by_mmsi.end()) {
        report.ship_name = it->second->info.name.substr(0, 20);
        report.ship_type = 37;  // pleasure craft
      }
    } else {
      report.type = ais::MessageType::kPositionReportScheduled;
      report.nav_status = ais::NavStatus::kUnderWayUsingEngine;
    }
    std::vector<std::string> sentences =
        ais::EncodeToNmea(report, 'A', sequence++);
    // Class A vessels periodically broadcast static & voyage data (type 5).
    if (!class_b && options.static_report_every > 0 &&
        ++reports_since_static[t.mmsi] >= options.static_report_every) {
      reports_since_static[t.mmsi] = 0;
      ais::StaticVoyageData sv;
      sv.mmsi = t.mmsi;
      sv.imo_number = 9000000u + t.mmsi % 1000000u;
      sv.call_sign = StrPrintf("SV%05u", t.mmsi % 100000u);
      if (it != by_mmsi.end()) {
        sv.ship_name = it->second->info.name.substr(0, 20);
        sv.ship_type = ais_ship_type(it->second->info.type);
        sv.draught_m = it->second->info.draft_m;
      }
      // Crew-entered voyage data is often missing or stale (paper §3.2).
      if (rng.NextBool(0.4)) {
        sv.destination = "";  // never entered
      } else if (rng.NextBool(0.3)) {
        sv.destination = "PIRAEUS";  // stale from a previous voyage
      } else {
        sv.destination = StrPrintf("PORT %02llu",
                                   static_cast<unsigned long long>(
                                       rng.NextBelow(25)));
      }
      for (std::string& s : ais::EncodeStaticToNmea(sv, 'A', sequence++)) {
        sentences.push_back(std::move(s));
      }
    }
    for (std::string sentence : sentences) {
      if (rng.NextBool(options.corrupt_prob) && !sentence.empty()) {
        // Flip one payload character; the checksum no longer matches.
        const size_t idx = 15 + rng.NextBelow(8);
        if (idx < sentence.size() - 3) sentence[idx] ^= 0x1;
      }
      out += StrPrintf("%lld\t", static_cast<long long>(t.tau));
      out += sentence;
      out += '\n';
    }
  }
  return out;
}

}  // namespace maritime::sim
