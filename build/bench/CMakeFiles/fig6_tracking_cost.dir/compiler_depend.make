# Empty compiler generated dependencies file for fig6_tracking_cost.
# This may be replaced when dependencies are built.
