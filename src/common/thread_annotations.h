#ifndef MARITIME_COMMON_THREAD_ANNOTATIONS_H_
#define MARITIME_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (-Wthread-safety), following the standard
/// macro set from the Clang documentation. Under GCC (which has no
/// counterpart analysis) every macro expands to nothing, so annotated headers
/// stay portable; under Clang the analysis statically proves that every
/// access to a `MARITIME_GUARDED_BY(mu)` member happens with `mu` held.

#if defined(__clang__) && !defined(SWIG)
#define MARITIME_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MARITIME_THREAD_ANNOTATION(x)  // no-op
#endif

#define MARITIME_CAPABILITY(x) MARITIME_THREAD_ANNOTATION(capability(x))

#define MARITIME_GUARDED_BY(x) MARITIME_THREAD_ANNOTATION(guarded_by(x))

#define MARITIME_PT_GUARDED_BY(x) MARITIME_THREAD_ANNOTATION(pt_guarded_by(x))

#define MARITIME_ACQUIRED_BEFORE(...) \
  MARITIME_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define MARITIME_ACQUIRED_AFTER(...) \
  MARITIME_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define MARITIME_REQUIRES(...) \
  MARITIME_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define MARITIME_ACQUIRE(...) \
  MARITIME_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define MARITIME_RELEASE(...) \
  MARITIME_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define MARITIME_EXCLUDES(...) \
  MARITIME_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define MARITIME_RETURN_CAPABILITY(x) \
  MARITIME_THREAD_ANNOTATION(lock_returned(x))

#define MARITIME_SCOPED_CAPABILITY \
  MARITIME_THREAD_ANNOTATION(scoped_lockable)

#define MARITIME_NO_THREAD_SAFETY_ANALYSIS \
  MARITIME_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // MARITIME_COMMON_THREAD_ANNOTATIONS_H_
