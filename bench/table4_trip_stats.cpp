// Table 4: statistics from compressed trajectories archived in the MOD —
// critical points in reconstructed trajectories vs still staged, number of
// trips between ports, trips per vessel, points per trip, travel time and
// traveled distance per trip.
//
// Computed "after the input stream was exhausted and all critical points
// were detected", as in the paper. Expected shape: a moderate number of
// critical points describes multi-hour trips; a noticeable share of points
// stays unassigned (open-ended trips of still-sailing vessels).

#include "bench_common.h"
#include "maritime/pipeline.h"
#include "stream/replayer.h"

namespace maritime::bench {
namespace {

void Main() {
  PrintHeader("table4_trip_stats — statistics from compressed trajectories",
              "Table 4, EDBT 2015 paper Section 5.1");
  BenchStream data = MakeBenchStream(/*base_vessels=*/150,
                                     /*duration=*/72 * kHour);
  std::printf("workload: %zu positions, %zu vessels, 72h\n\n",
              data.tuples.size(), data.fleet.size());

  surveillance::PipelineConfig pc;
  pc.window = stream::WindowSpec{kHour, 15 * kMinute};
  pc.archive = true;
  surveillance::SurveillancePipeline pipeline(&data.world.knowledge, pc);
  stream::StreamReplayer replayer(data.tuples);
  pipeline.Run(replayer);

  std::printf("%s\n", pipeline.archiver()->Statistics().ToString().c_str());
  const auto cstats = pipeline.compression_stats();
  std::printf("Compression ratio                              %.4f\n",
              cstats.ratio());
  std::printf("Simulated port calls (ground truth)            %llu\n",
              static_cast<unsigned long long>(data.truth.port_calls));
  std::printf("\nexpected shape (paper Table 4): trips an order of magnitude "
              "more numerous than vessels; ~25%% of critical points pending "
              "in open-ended trips; average trip spans hours and tens to "
              "hundreds of km.\n");
}

}  // namespace
}  // namespace maritime::bench

int main() {
  maritime::bench::Main();
  return 0;
}
