#ifndef MARITIME_GEO_SPATIAL_INDEX_H_
#define MARITIME_GEO_SPATIAL_INDEX_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "geo/polygon.h"

namespace maritime::geo {

/// Grid-cell margin (degrees of latitude) guaranteeing that any point whose
/// Haversine distance to a lon/lat box is below `threshold_m` lies within
/// the margin of the box's latitude interval (d >= R * |delta phi|).
double CloseLatMarginDeg(double threshold_m);

/// Grid-cell margin (degrees of longitude) with the same guarantee for the
/// longitude interval, at worst-case latitude `max_abs_lat_deg` (longitude
/// degrees shrink by cos(lat); near the poles the margin saturates at 180,
/// meaning no longitude-based pruning is possible).
double CloseLonMarginDeg(double threshold_m, double max_abs_lat_deg);

/// Two-tier spatial acceleration structure for the `close(Lon,Lat,Area)`
/// predicate and for point-in-polygon lookups, exact with respect to the
/// brute-force implementation (`Polygon::DistanceMeters(p) < threshold` and
/// `Polygon::Contains(p)`).
///
/// Tier 1 — at Insert() time every grid cell overlapping a polygon's
/// threshold neighborhood is classified per polygon:
///   - all-close: the cell lies wholly inside the polygon (distance 0);
///   - all-far:   conservative lower bounds prove every cell point is at
///                distance >= threshold (such cells carry no entry at all);
///   - boundary:  everything else — the exact predicate is re-evaluated at
///                query time, but only against tier 2.
/// Containment gets the same treatment: when no polygon edge can intersect
/// the cell, the even-odd ray-cast parity is constant across the cell, so a
/// single representative test at build time decides inside/outside for the
/// whole cell; only cells the boundary may cross re-run the full test.
///
/// Tier 2 — each boundary cell stores the bucket of polygon edges whose
/// conservative lower-bound distance to the cell is below the threshold.
/// Edges excluded from the bucket can never satisfy `distance < threshold`
/// for any point of the cell, so the boolean answer of the min-over-bucket
/// scan equals the min-over-all-edges scan bit for bit (DESIGN.md section 8
/// has the full exactness argument).
///
/// Inputs outside the valid geographic domain (non-finite coordinates, or
/// |lon| > 180 / |lat| > 90, where the conservative bounds do not hold) and
/// polygons whose neighborhood would need more than
/// `Options::max_cells_per_polygon` cells fall back to the brute-force scan
/// for exactly those polygons/queries, preserving exactness in all cases.
class SpatialIndex {
 public:
  struct Options {
    /// Cell edge length in degrees. Clamped to [1e-3, 45].
    double cell_deg = 0.02;
    /// Insertions needing more cells than this are kept un-indexed and
    /// answered by brute force (guards degenerate/huge polygons).
    size_t max_cells_per_polygon = 262144;
  };

  /// One-entry locality cache: consecutive queries from the same caller
  /// almost always land in the same cell, so the cell lookup is skipped.
  /// A cache may be reused across SpatialIndex instances; a generation
  /// stamp (unique per index build state) invalidates it automatically.
  class Cache {
   public:
    Cache() = default;

   private:
    friend class SpatialIndex;
    uint64_t generation_ = 0;
    int64_t key_ = 0;
    const void* cell_ = nullptr;
  };

  explicit SpatialIndex(double close_threshold_m);
  SpatialIndex(double close_threshold_m, Options options);

  SpatialIndex(const SpatialIndex& other);
  SpatialIndex& operator=(const SpatialIndex& other);
  SpatialIndex(SpatialIndex&& other) noexcept;
  SpatialIndex& operator=(SpatialIndex&& other) noexcept;

  /// Registers `poly` under `id` (ids must be unique across insertions).
  void Insert(int32_t id, const Polygon& poly);

  /// Exact equivalent of `poly(id).DistanceMeters(p) < threshold`; false for
  /// unknown ids.
  bool Close(const GeoPoint& p, int32_t id, Cache* cache = nullptr) const;

  /// Ids of all registered polygons close to `p`, sorted ascending.
  void AreasCloseTo(const GeoPoint& p, std::vector<int32_t>* out,
                    Cache* cache = nullptr) const;

  /// True iff at least one registered polygon is close to `p`.
  bool AnyClose(const GeoPoint& p, Cache* cache = nullptr) const;

  /// Ids of all registered polygons containing `p` (exact equivalent of
  /// `poly.Contains(p)`), sorted ascending.
  void AreasContaining(const GeoPoint& p, std::vector<int32_t>* out,
                       Cache* cache = nullptr) const;

  /// Exact equivalent of `poly(id).Contains(p)`; false for unknown ids.
  bool Contains(const GeoPoint& p, int32_t id, Cache* cache = nullptr) const;

  double close_threshold_m() const { return threshold_m_; }
  size_t polygon_count() const { return slots_.size(); }
  size_t cell_count() const { return cell_storage_.size(); }
  /// Polygons answered by brute force (domain/size fallback).
  size_t overflow_count() const { return overflow_.size(); }

 private:
  enum class CloseLabel : uint8_t { kAllClose, kBoundary };
  enum class ContainLabel : uint8_t { kInside, kOutside, kBoundary };

  struct Edge {
    GeoPoint a;
    GeoPoint b;
  };

  struct CellEntry {
    int32_t id = -1;
    uint32_t slot = 0;
    CloseLabel close = CloseLabel::kBoundary;
    ContainLabel contain = ContainLabel::kOutside;
    uint32_t edges_begin = 0;  ///< Tier-2 bucket range in edge_pool_.
    uint32_t edges_end = 0;
  };

  struct Cell {
    std::vector<CellEntry> entries;  ///< Sorted by id ascending.
  };

  struct Slot {
    int32_t id = -1;
    Polygon poly;
    bool overflow = false;
  };

  /// Open-addressing hash table from cell key to an index into
  /// `cell_storage_`. Power-of-two capacity so the lookup uses a mask
  /// instead of std::unordered_map's prime-modulo division — the cell
  /// lookup is the single hottest instruction sequence of every query.
  struct CellTable {
    /// Impossible key: |ix| is bounded by 540/cell_deg_min << 2^31, so the
    /// high half of a real key never reaches INT32_MIN.
    static constexpr int64_t kEmptyKey = std::numeric_limits<int64_t>::min();
    std::vector<int64_t> keys;   ///< kEmptyKey marks a free bucket.
    std::vector<uint32_t> vals;  ///< Parallel: index into cell_storage_.
    size_t size = 0;             ///< Occupied buckets.
  };

  static int64_t KeyOf(int64_t ix, int64_t iy) {
    return (ix << 32) | static_cast<uint32_t>(static_cast<int32_t>(iy));
  }
  static uint64_t MixKey(int64_t key);
  int64_t CellX(double lon) const;
  int64_t CellY(double lat) const;
  const Cell* FindCell(int64_t key) const;
  Cell& CellForInsert(int64_t key);
  void RehashCells(size_t new_capacity);
  const Cell* LookupCell(const GeoPoint& p, Cache* cache) const;
  bool EntryClose(const CellEntry& e, const GeoPoint& p) const;
  bool EntryContains(const CellEntry& e, const GeoPoint& p) const;
  void InsertCells(uint32_t slot, int64_t ix0, int64_t ix1, int64_t iy0,
                   int64_t iy1, const std::vector<Edge>& edges,
                   const std::vector<BoundingBox>& edge_boxes);
  void BumpGeneration();

  double threshold_m_;
  double cell_deg_;
  double inv_cell_deg_;  ///< 1/cell_deg_, so hot lookups multiply, not divide.
  size_t max_cells_;
  uint64_t generation_ = 0;
  std::vector<Slot> slots_;
  std::unordered_map<int32_t, uint32_t> slot_of_;
  std::vector<uint32_t> overflow_;  ///< Slot indices answered by brute force.
  CellTable table_;
  std::vector<Cell> cell_storage_;
  std::vector<Edge> edge_pool_;
};

}  // namespace maritime::geo

#endif  // MARITIME_GEO_SPATIAL_INDEX_H_
