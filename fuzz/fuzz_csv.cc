// Fuzz target for the CSV stream reader (the IMIS-dataset interchange
// layout). Arbitrary documents must parse to valid tuples or be skipped;
// accepted rows must round-trip through the writer.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/check.h"
#include "geo/geo_point.h"
#include "stream/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  size_t skipped = 0;
  const auto parsed = maritime::stream::ParsePositionsCsv(
      text, maritime::stream::CsvFormat{}, &skipped);
  if (parsed.ok()) {
    for (const auto& t : parsed.value()) {
      MARITIME_DCHECK(maritime::geo::IsValidPosition(t.pos));
    }
    // Writer output is canonical: re-parsing it keeps every tuple.
    const std::string out = maritime::stream::WritePositionsCsv(parsed.value());
    const auto reparsed = maritime::stream::ParsePositionsCsv(out);
    if (!parsed.value().empty()) {
      MARITIME_DCHECK_OK(reparsed);
      MARITIME_DCHECK(reparsed.value().size() == parsed.value().size());
    }
  }

  // Alternate layout: headerless, semicolon-separated, shuffled columns.
  maritime::stream::CsvFormat alt;
  alt.separator = ';';
  alt.has_header = false;
  alt.mmsi_column = 3;
  alt.tau_column = 2;
  alt.lon_column = 1;
  alt.lat_column = 0;
  (void)maritime::stream::ParsePositionsCsv(text, alt);
  return 0;
}
