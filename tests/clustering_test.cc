#include <gtest/gtest.h>

#include "mod/clustering.h"

namespace maritime::mod {
namespace {

tracker::CriticalPoint Cp(stream::Mmsi mmsi, geo::GeoPoint pos,
                          Timestamp tau) {
  tracker::CriticalPoint cp;
  cp.mmsi = mmsi;
  cp.pos = pos;
  cp.tau = tau;
  return cp;
}

/// A trip along the lane A->B departing at `depart`, optionally shifted
/// sideways by `offset_m`.
Trip LaneTrip(stream::Mmsi mmsi, Timestamp depart, double offset_m = 0.0) {
  const geo::GeoPoint a =
      geo::DestinationPoint(geo::GeoPoint{24.0, 37.0}, 90.0, offset_m);
  const geo::GeoPoint b =
      geo::DestinationPoint(geo::GeoPoint{24.0, 37.5}, 90.0, offset_m);
  Trip t;
  t.mmsi = mmsi;
  t.origin_port = 1000;
  t.destination_port = 1001;
  t.start_tau = depart;
  t.end_tau = depart + 2 * kHour;
  t.distance_m = geo::HaversineMeters(a, b);
  for (int i = 0; i <= 4; ++i) {
    t.points.push_back(Cp(mmsi, geo::Interpolate(a, b, i / 4.0),
                          depart + i * 30 * kMinute));
  }
  return t;
}

TEST(TripDistanceTest, IdenticalShapesAreZero) {
  const Trip a = LaneTrip(1, 0);
  const Trip b = LaneTrip(2, 5 * kHour);  // same path, later departure
  EXPECT_NEAR(TripShapeDistanceMeters(a, b), 0.0, 1.0);
}

TEST(TripDistanceTest, ParallelShiftMeasured) {
  const Trip a = LaneTrip(1, 0);
  const Trip b = LaneTrip(2, 0, /*offset_m=*/3000.0);
  EXPECT_NEAR(TripShapeDistanceMeters(a, b), 3000.0, 50.0);
}

TEST(TripDistanceTest, ReverseDirectionIsFar) {
  Trip a = LaneTrip(1, 0);
  Trip b = LaneTrip(2, 0);
  std::reverse(b.points.begin(), b.points.end());
  // Re-stamp times ascending after the reversal.
  for (size_t i = 0; i < b.points.size(); ++i) {
    b.points[i].tau = static_cast<Timestamp>(i) * 30 * kMinute;
  }
  // A and the reversed B coincide only at the midpoint.
  EXPECT_GT(TripShapeDistanceMeters(a, b), 20000.0);
}

TEST(TimeOfDayDistanceTest, CircularWithinDay) {
  const Trip morning = LaneTrip(1, 8 * kHour);
  const Trip evening = LaneTrip(2, 20 * kHour);
  EXPECT_EQ(DepartureTimeOfDayDistance(morning, evening), 12 * kHour);
  const Trip next_day_morning = LaneTrip(3, kDay + 8 * kHour);
  EXPECT_EQ(DepartureTimeOfDayDistance(morning, next_day_morning), 0);
  const Trip late = LaneTrip(4, 23 * kHour);
  const Trip early = LaneTrip(5, kHour);
  EXPECT_EQ(DepartureTimeOfDayDistance(late, early), 2 * kHour);
}

TEST(ClusterTripsTest, SamePathSameHourClustersAcrossDays) {
  TrajectoryStore store;
  // The 08:00 ferry on three days, the 20:00 ferry on three days: same
  // path, two clusters — "almost identical spatially, but distinct because
  // the temporal dimension is taken into consideration" (paper §3.3).
  for (int day = 0; day < 3; ++day) {
    store.AddTrip(LaneTrip(1, day * kDay + 8 * kHour));
    store.AddTrip(LaneTrip(1, day * kDay + 20 * kHour));
  }
  const auto clusters = ClusterTrips(store);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].trip_indices.size(), 3u);
  EXPECT_EQ(clusters[1].trip_indices.size(), 3u);
}

TEST(ClusterTripsTest, SpatiallyDistinctPathsSeparate) {
  TrajectoryStore store;
  store.AddTrip(LaneTrip(1, 8 * kHour));
  store.AddTrip(LaneTrip(2, 8 * kHour, /*offset_m=*/40000.0));
  const auto clusters = ClusterTrips(store);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(ClusterTripsTest, ThresholdsRespected) {
  TrajectoryStore store;
  store.AddTrip(LaneTrip(1, 8 * kHour));
  store.AddTrip(LaneTrip(2, 8 * kHour, /*offset_m=*/3000.0));
  ClusteringParams tight;
  tight.spatial_threshold_m = 1000.0;
  EXPECT_EQ(ClusterTrips(store, tight).size(), 2u);
  ClusteringParams loose;
  loose.spatial_threshold_m = 6000.0;
  EXPECT_EQ(ClusterTrips(store, loose).size(), 1u);
}

TEST(ClusterTripsTest, LargestClusterFirst) {
  TrajectoryStore store;
  store.AddTrip(LaneTrip(1, 8 * kHour, 40000.0));  // singleton
  for (int day = 0; day < 4; ++day) {
    store.AddTrip(LaneTrip(2, day * kDay + 8 * kHour));
  }
  const auto clusters = ClusterTrips(store);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].trip_indices.size(), 4u);
}

TEST(ClusterTripsTest, EmptyStore) {
  TrajectoryStore store;
  EXPECT_TRUE(ClusterTrips(store).empty());
}

TEST(SimilarityTest, RanksByShapeDistance) {
  TrajectoryStore store;
  store.AddTrip(LaneTrip(1, 0));                       // 0: identical shape
  store.AddTrip(LaneTrip(2, 0, /*offset_m=*/2000.0));  // 1: 2 km off
  store.AddTrip(LaneTrip(3, 0, /*offset_m=*/20000.0)); // 2: far
  const Trip query = LaneTrip(9, 12 * kHour);
  const auto similar = MostSimilarTrips(store, query, 2);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0], 0u);
  EXPECT_EQ(similar[1], 1u);
}

TEST(SimilarityTest, ExcludesQueryItself) {
  TrajectoryStore store;
  const Trip self = LaneTrip(1, 0);
  store.AddTrip(self);
  store.AddTrip(LaneTrip(2, 0, 2000.0));
  const auto similar = MostSimilarTrips(store, self, 5);
  ASSERT_EQ(similar.size(), 1u);
  EXPECT_EQ(similar[0], 1u);
}

}  // namespace
}  // namespace maritime::mod
