// Seed-corpus generator: renders realistic inputs for each fuzz target out
// of the deterministic fleet simulator, so the fuzzers start from the
// grammar of real traffic instead of random bytes.
//
//   fuzz_make_corpus <output-root>
//
// writes <output-root>/{scanner,sixbit,csv,spatial}/seed-*.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ais/messages.h"
#include "ais/sixbit.h"
#include "maritime/live_index.h"
#include "maritime/me_stream.h"
#include "maritime/pipeline.h"
#include "mod/hermes.h"
#include "rtec/engine.h"
#include "sim/generator.h"
#include "sim/nmea_feed.h"
#include "sim/world.h"
#include "snapshot/codec.h"
#include "snapshot/snapshot.h"
#include "stream/csv.h"
#include "stream/replayer.h"
#include "tracker/sharded_tracker.h"

namespace {

void WriteSeed(const std::filesystem::path& dir, int index,
               const std::string& content) {
  std::ofstream f(dir / ("seed-" + std::to_string(index)), std::ios::binary);
  f << content;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root = argv[1];
  const auto scanner_dir = root / "scanner";
  const auto sixbit_dir = root / "sixbit";
  const auto csv_dir = root / "csv";
  const auto spatial_dir = root / "spatial";
  const auto snapshot_dir = root / "snapshot";
  for (const auto& dir :
       {scanner_dir, sixbit_dir, csv_dir, spatial_dir, snapshot_dir}) {
    std::filesystem::create_directories(dir);
  }

  maritime::sim::World world = maritime::sim::BuildWorld(7);
  maritime::sim::FleetConfig cfg;
  cfg.vessels = 12;
  cfg.duration = 2 * maritime::kHour;
  cfg.outlier_prob = 0.01;
  maritime::sim::FleetSimulator sim(&world, cfg);
  const auto tuples = sim.Generate();

  // Scanner seeds: tagged NMEA feed chunks — one clean, one with corrupted
  // checksums and extended two-fragment class-B messages.
  maritime::sim::NmeaFeedOptions clean;
  const std::string clean_feed =
      maritime::sim::EncodeTaggedNmeaFeed(tuples, sim.fleet(), clean);
  maritime::sim::NmeaFeedOptions noisy;
  noisy.corrupt_prob = 0.1;
  noisy.extended_class_b_prob = 0.5;
  noisy.static_report_every = 10;
  const std::string noisy_feed =
      maritime::sim::EncodeTaggedNmeaFeed(tuples, sim.fleet(), noisy);
  const size_t kChunk = 4096;
  int scanner_seeds = 0;
  for (const std::string* feed : {&clean_feed, &noisy_feed}) {
    for (size_t at = 0; at < feed->size() && scanner_seeds < 12;
         at += kChunk) {
      WriteSeed(scanner_dir, scanner_seeds++, feed->substr(at, kChunk));
    }
  }

  // Sixbit seeds: armored payloads of real encoded messages, prefixed with
  // the fill-bits byte the fuzz target expects.
  int sixbit_seeds = 0;
  for (size_t i = 0; i < tuples.size() && sixbit_seeds < 12; i += 97) {
    maritime::ais::PositionReport r;
    r.type = (i % 2 == 0)
                 ? maritime::ais::MessageType::kPositionReportScheduled
                 : maritime::ais::MessageType::kExtendedClassB;
    r.mmsi = tuples[i].mmsi;
    r.lon_deg = tuples[i].pos.lon;
    r.lat_deg = tuples[i].pos.lat;
    r.sog_knots = 7.5;
    r.cog_deg = 123.4;
    r.ship_name = "FUZZ SEED";
    int fill = 0;
    const std::string payload = maritime::ais::ArmorPayload(
        maritime::ais::EncodePositionReport(r), &fill);
    WriteSeed(sixbit_dir, sixbit_seeds++,
              std::string(1, static_cast<char>(fill)) + payload);
  }
  maritime::ais::StaticVoyageData voyage;
  voyage.mmsi = 237000999;
  voyage.ship_name = "SEED VESSEL";
  voyage.destination = "PIRAEUS";
  voyage.ship_type = 70;
  voyage.draught_m = 7.5;
  int fill = 0;
  const std::string voyage_payload = maritime::ais::ArmorPayload(
      maritime::ais::EncodeStaticVoyageData(voyage), &fill);
  WriteSeed(sixbit_dir, sixbit_seeds++,
            std::string(1, static_cast<char>(fill)) + voyage_payload);

  // CSV seeds: written positional chunks, plus a headerless variant.
  int csv_seeds = 0;
  for (size_t at = 0; at < tuples.size() && csv_seeds < 8; at += 512) {
    const std::vector<maritime::stream::PositionTuple> chunk(
        tuples.begin() + static_cast<ptrdiff_t>(at),
        tuples.begin() +
            static_cast<ptrdiff_t>(std::min(tuples.size(), at + 512)));
    WriteSeed(csv_dir, csv_seeds++, maritime::stream::WritePositionsCsv(chunk));
  }

  // Spatial seeds: the fuzz_spatial grammar is a self-describing byte
  // stream (header picks cell size / threshold / base point, then an
  // interleaved insert/query op stream), so deterministic pseudo-random
  // buffers with distinct seeds already cover distinct regimes; the
  // boundary buffers pin the all-zeros and all-ones header decodings.
  int spatial_seeds = 0;
  for (uint64_t s = 1; s <= 6; ++s) {
    std::string bytes(512, '\0');
    uint64_t x = s * 0x9e3779b97f4a7c15ull;
    for (char& b : bytes) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      b = static_cast<char>(x);
    }
    WriteSeed(spatial_dir, spatial_seeds++, bytes);
  }
  WriteSeed(spatial_dir, spatial_seeds++, std::string(64, '\0'));
  WriteSeed(spatial_dir, spatial_seeds++, std::string(64, '\xff'));

  // Snapshot seeds: valid checkpoints of each component, prefixed with the
  // fuzz_snapshot target selector byte, so mutation starts from bytes that
  // pass the outer framing and reach the deep per-field validation paths.
  int snapshot_seeds = 0;
  {
    // A pipeline checkpoint a few slides into the simulated stream.
    maritime::surveillance::PipelineConfig pcfg;
    pcfg.window =
        maritime::stream::WindowSpec{maritime::kHour, 10 * maritime::kMinute};
    pcfg.partitions = 1;
    pcfg.archive = true;
    maritime::surveillance::SurveillancePipeline pipeline(&world.knowledge,
                                                          pcfg);
    maritime::stream::StreamReplayer replayer(tuples);
    maritime::stream::QueryTimeSequence q(pcfg.window,
                                          replayer.first_timestamp());
    for (int i = 0; i < 4; ++i) {
      const maritime::Timestamp qt = q.Fire();
      pipeline.RunSlide(qt, replayer.NextBatch(qt));
    }
    maritime::snapshot::Writer w;
    pipeline.SaveTo(w);
    WriteSeed(snapshot_dir, snapshot_seeds++,
              std::string(1, '\x00') +
                  maritime::snapshot::EncodeSnapshotFile(w.bytes()));
    WriteSeed(snapshot_dir, snapshot_seeds++,
              std::string(1, '\x07') + w.bytes());

    maritime::tracker::ShardedMobilityTracker tracker(
        maritime::tracker::TrackerParams{}, 2);
    tracker.ProcessSlide(tuples, tuples.back().tau);
    maritime::snapshot::Writer tw;
    tracker.SaveTo(tw);
    WriteSeed(snapshot_dir, snapshot_seeds++,
              std::string(1, '\x03') + tw.bytes());
  }
  {
    maritime::surveillance::SpatialFactTable facts;
    facts.AddFactGroup(7, 100, {1, 2, 3});
    facts.AddFactGroup(9, 150, {2});
    maritime::snapshot::Writer w;
    facts.SaveTo(w);
    WriteSeed(snapshot_dir, snapshot_seeds++,
              std::string(1, '\x01') + w.bytes());
  }
  {
    maritime::surveillance::LiveVesselIndex index(0.1);
    for (size_t i = 0; i < tuples.size() && i < 400; i += 13) {
      index.Update(tuples[i]);
    }
    maritime::snapshot::Writer w;
    index.SaveTo(w);
    WriteSeed(snapshot_dir, snapshot_seeds++,
              std::string(1, '\x02') + w.bytes());
  }
  {
    // Archival path with a little staged + reconstructed traffic.
    maritime::mod::HermesArchiver archiver(&world.knowledge);
    maritime::tracker::ShardedMobilityTracker tracker(
        maritime::tracker::TrackerParams{}, 1);
    const auto criticals = tracker.ProcessSlide(tuples, tuples.back().tau);
    archiver.StageBatch(criticals);
    archiver.Reconstruct();
    maritime::snapshot::Writer w;
    archiver.SaveTo(w);
    WriteSeed(snapshot_dir, snapshot_seeds++,
              std::string(1, '\x05') + w.bytes());

    maritime::snapshot::Writer sw;
    archiver.store().SaveTo(sw);
    WriteSeed(snapshot_dir, snapshot_seeds++,
              std::string(1, '\x04') + sw.bytes());
  }
  {
    // The tiny on/off/active schema fuzz_snapshot restores against.
    maritime::rtec::Engine engine(maritime::stream::WindowSpec{120, 60});
    const maritime::rtec::EventId on = engine.DeclareEvent("on");
    const maritime::rtec::EventId off = engine.DeclareEvent("off");
    const maritime::rtec::FluentId active = engine.DeclareFluent("active");
    maritime::rtec::SimpleFluentSpec spec;
    spec.fluent = active;
    spec.output = true;
    spec.domain = [on, off](const maritime::rtec::EvalContext& ctx) {
      std::vector<maritime::rtec::Term> keys;
      for (const auto& e : ctx.Events(on)) keys.push_back(e.subject);
      for (const auto& e : ctx.Events(off)) keys.push_back(e.subject);
      return keys;
    };
    spec.rules = [on, off](const maritime::rtec::EvalContext& ctx,
                           maritime::rtec::Term key,
                           maritime::rtec::PointVec* init,
                           maritime::rtec::PointVec* term) {
      for (const auto& e : ctx.Events(on)) {
        if (e.subject == key) init->push_back({maritime::rtec::kTrue, e.t});
      }
      for (const auto& e : ctx.Events(off)) {
        if (e.subject == key) term->push_back({maritime::rtec::kTrue, e.t});
      }
    };
    engine.AddSimpleFluent(std::move(spec));
    engine.AssertEvent(on, maritime::rtec::Term{0, 1}, 30);
    engine.AssertEvent(off, maritime::rtec::Term{0, 1}, 70);
    engine.Recognize(60);
    maritime::snapshot::Writer w;
    engine.SaveTo(w);
    WriteSeed(snapshot_dir, snapshot_seeds++,
              std::string(1, '\x06') + w.bytes());
  }

  std::printf("corpus: %d scanner, %d sixbit, %d csv, %d spatial, "
              "%d snapshot seeds under %s\n",
              scanner_seeds, sixbit_seeds, csv_seeds, spatial_seeds,
              snapshot_seeds, root.c_str());
  return 0;
}
