file(REMOVE_RECURSE
  "libmaritime_sim.a"
)
