#include "tracker/params.h"

namespace maritime::tracker {

Status TrackerParams::Validate() const {
  if (min_speed_knots <= 0.0) {
    return Status::InvalidArgument("min_speed_knots must be positive");
  }
  if (slow_speed_knots < min_speed_knots) {
    return Status::InvalidArgument(
        "slow_speed_knots must be >= min_speed_knots");
  }
  if (speed_change_ratio <= 0.0 || speed_change_ratio >= 1.0) {
    return Status::InvalidArgument("speed_change_ratio must be in (0,1)");
  }
  if (gap_period <= 0) {
    return Status::InvalidArgument("gap_period must be positive");
  }
  if (turn_threshold_deg <= 0.0 || turn_threshold_deg >= 180.0) {
    return Status::InvalidArgument("turn_threshold_deg must be in (0,180)");
  }
  if (stop_radius_m <= 0.0) {
    return Status::InvalidArgument("stop_radius_m must be positive");
  }
  if (history_size < 2) {
    return Status::InvalidArgument("history_size must be at least 2");
  }
  if (outlier_speed_factor <= 1.0) {
    return Status::InvalidArgument("outlier_speed_factor must exceed 1");
  }
  if (outlier_min_speed_knots <= 0.0) {
    return Status::InvalidArgument("outlier_min_speed_knots must be positive");
  }
  if (outlier_reset_count < 1) {
    return Status::InvalidArgument("outlier_reset_count must be >= 1");
  }
  return Status::OK();
}

}  // namespace maritime::tracker
