#ifndef MARITIME_MARITIME_AIS_BRIDGE_H_
#define MARITIME_MARITIME_AIS_BRIDGE_H_

#include "ais/messages.h"
#include "ais/scanner.h"
#include "maritime/knowledge.h"

namespace maritime::surveillance {

/// Merges one decoded AIS type 5 message into the knowledge base: the
/// system learns ship types and draughts from the stream itself. The
/// crew-entered voyage fields are ignored (see
/// KnowledgeBase::UpsertVesselStatic).
inline void ApplyStaticVoyageData(KnowledgeBase& kb,
                                  const ais::StaticVoyageData& data) {
  kb.UpsertVesselStatic(data.mmsi, data.ship_name,
                        VesselTypeFromAisCode(data.ship_type),
                        data.draught_m);
}

/// Drains the scanner's decoded type 5 buffer into the knowledge base.
/// Returns the number of messages applied.
inline size_t ApplyStaticReports(KnowledgeBase& kb,
                                 ais::DataScanner& scanner) {
  size_t n = 0;
  for (const ais::StaticVoyageData& d : scanner.TakeStaticReports()) {
    ApplyStaticVoyageData(kb, d);
    ++n;
  }
  return n;
}

}  // namespace maritime::surveillance

#endif  // MARITIME_MARITIME_AIS_BRIDGE_H_
