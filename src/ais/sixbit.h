#ifndef MARITIME_AIS_SIXBIT_H_
#define MARITIME_AIS_SIXBIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace maritime::ais {

/// Payload "armoring": AIVDM sentences carry the binary message body as a
/// string where each ASCII character encodes 6 bits (value v maps to char
/// v+48 for v < 40, else v+56 — ITU-R M.1371 / NMEA convention).

/// Converts raw bits into an armored payload string plus the number of fill
/// bits (0–5) appended to complete the final character.
std::string ArmorPayload(const std::vector<uint8_t>& bits, int* fill_bits);

/// Converts an armored payload string back into bits, dropping `fill_bits`
/// trailing pad bits. Fails on characters outside the armoring alphabet or
/// fill_bits outside [0, 5].
Result<std::vector<uint8_t>> DearmorPayload(const std::string& payload,
                                            int fill_bits);

/// Maps a 6-bit value (0–63) to its armored ASCII character.
char ArmorChar(uint8_t value);

/// Maps an armored ASCII character back to its 6-bit value, or -1 if the
/// character is not part of the armoring alphabet.
int DearmorChar(char c);

}  // namespace maritime::ais

#endif  // MARITIME_AIS_SIXBIT_H_
