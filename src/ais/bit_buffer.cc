#include "ais/bit_buffer.h"

#include "common/check.h"

namespace maritime::ais {
namespace {

// AIS 6-bit character set (ITU-R M.1371 Table 44): index = 6-bit value.
constexpr char kSixbitAlphabet[] =
    "@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_ !\"#$%&'()*+,-./0123456789:;<=>?";

int SixbitFromChar(char c) {
  for (int i = 0; i < 64; ++i) {
    if (kSixbitAlphabet[i] == c) return i;
  }
  // Lowercase letters map onto their uppercase counterparts.
  if (c >= 'a' && c <= 'z') return c - 'a' + 1;
  return 0;  // '@' (null) for anything unrepresentable
}

}  // namespace

void BitWriter::WriteUnsigned(uint64_t value, int width) {
  MARITIME_DCHECK_MSG(width > 0 && width <= 64, "field width out of range");
  for (int i = width - 1; i >= 0; --i) {
    bits_.push_back(static_cast<uint8_t>((value >> i) & 1u));
  }
  bit_size_ += static_cast<size_t>(width);
}

void BitWriter::WriteSigned(int64_t value, int width) {
  WriteUnsigned(static_cast<uint64_t>(value), width);
}

void BitWriter::WriteSixbitString(const std::string& s, int chars) {
  for (int i = 0; i < chars; ++i) {
    const char c = i < static_cast<int>(s.size()) ? s[static_cast<size_t>(i)]
                                                  : '@';
    WriteUnsigned(static_cast<uint64_t>(SixbitFromChar(c)), 6);
  }
}

uint64_t BitReader::ReadUnsigned(int width) {
  MARITIME_DCHECK_MSG(width > 0 && width <= 64, "field width out of range");
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    uint8_t bit = 0;
    if (pos_ < bits_.size()) {
      bit = bits_[pos_];
    } else {
      overflow_ = true;
    }
    v = (v << 1) | bit;
    ++pos_;
  }
  // Reads stay in range unless the overflow flag says otherwise — the
  // contract the scanner relies on to flag truncated payloads.
  MARITIME_DCHECK(overflow_ || pos_ <= bits_.size());
  return v;
}

int64_t BitReader::ReadSigned(int width) {
  uint64_t v = ReadUnsigned(width);
  // Sign-extend from `width` bits.
  if (width < 64 && (v & (1ULL << (width - 1)))) {
    v |= ~((1ULL << width) - 1);
  }
  return static_cast<int64_t>(v);
}

std::string BitReader::ReadSixbitString(int chars) {
  constexpr char kAlphabet[] =
      "@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_ !\"#$%&'()*+,-./0123456789:;<=>?";
  std::string out;
  out.reserve(static_cast<size_t>(chars));
  for (int i = 0; i < chars; ++i) {
    const uint64_t v = ReadUnsigned(6);
    out.push_back(kAlphabet[v & 63u]);
  }
  // Strip trailing padding ('@' and spaces).
  while (!out.empty() && (out.back() == '@' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

void BitReader::Skip(int width) {
  MARITIME_DCHECK_MSG(width >= 0, "cannot skip backwards");
  pos_ += static_cast<size_t>(width);
  if (pos_ > bits_.size()) overflow_ = true;
}

}  // namespace maritime::ais
