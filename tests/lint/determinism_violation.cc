// maritime-lint fixture: violating cases for the determinism rule —
// unordered-container iteration order reaching committed/serialized state.
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"

namespace fixtures {

class RouteTable {
 public:
  MARITIME_COMMIT_BOUNDARY void Commit() {
    for (const auto& [key, row] : routes_) {  // lint-expect: determinism
      committed_.push_back(key);
    }
  }

  MARITIME_OUTPUT_PATH void Serialize(std::vector<int>* out) const {
    for (const auto& entry : hops_) {  // lint-expect: determinism
      out->push_back(entry);
    }
  }

 private:
  std::unordered_map<int, int> routes_;
  std::unordered_set<int> hops_;
  std::vector<int> committed_;
};

}  // namespace fixtures
