#ifndef MARITIME_TRACKER_PARAMS_H_
#define MARITIME_TRACKER_PARAMS_H_

#include "common/status.h"
#include "common/time.h"

namespace maritime::tracker {

/// Calibrated mobility-tracking parameters (paper Table 3). Defaults are the
/// paper's bold defaults; Δθ is swept over {5°, 10°, 15°, 20°} by the
/// compression/accuracy experiments (Figures 8 and 9).
struct TrackerParams {
  /// v_min: minimum speed for asserting movement — below it the vessel is
  /// practically immobile (paper default: 1 knot).
  double min_speed_knots = 1.0;

  /// Upper speed bound of a "slow motion" episode. The paper uses a single
  /// low-speed notion; we expose the slow-motion bound separately so that
  /// trawling-speed fishing vessels (2–4 kn) register as slowMotion MEs
  /// while v_min keeps its collision with pause detection. Documented in
  /// DESIGN.md.
  double slow_speed_knots = 4.0;

  /// α: rate of speed change (fraction, paper default 25%).
  double speed_change_ratio = 0.25;

  /// ΔT: minimum silence before a communication gap is reported
  /// (paper default: 10 minutes).
  Duration gap_period = 10 * kMinute;

  /// Δθ: heading change (degrees) that qualifies as a turn (paper default
  /// for the aggressive data-reduction setting: 5°).
  double turn_threshold_deg = 5.0;

  /// r: radius for long-term stops (paper default: 200 meters).
  double stop_radius_m = 200.0;

  /// m: number of most recent positions inspected by long-lasting event
  /// detection (paper default: 10).
  int history_size = 10;

  /// Displacement that triggers a shape waypoint inside a slow-motion
  /// episode. Between its start and end markers a meandering episode (e.g.
  /// a trawler working a ground for hours) would otherwise collapse to a
  /// straight segment.
  double slow_waypoint_m = 300.0;

  /// Off-course outlier detection: a sample is an outlier when the velocity
  /// it implies deviates from the mean velocity over the last m positions by
  /// more than max(outlier_min_speed_knots,
  ///              outlier_speed_factor * mean speed).
  double outlier_speed_factor = 3.0;
  double outlier_min_speed_knots = 30.0;

  /// After this many consecutive outliers the tracker concludes the vessel
  /// really did jump (e.g. corrected GPS fix) and resets its motion state.
  int outlier_reset_count = 3;

  Status Validate() const;
};

}  // namespace maritime::tracker

#endif  // MARITIME_TRACKER_PARAMS_H_
