#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_queue.h"

namespace maritime::common {
namespace {

TEST(SpscQueueTest, StartsEmpty) {
  SpscQueue<int> q;
  EXPECT_TRUE(q.Empty());
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(&out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(SpscQueueTest, FifoWithinOneSegment) {
  SpscQueue<int, 16> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  EXPECT_FALSE(q.Empty());
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(&out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueueTest, FifoAcrossManySegments) {
  // Small segments force frequent segment allocation and reclamation.
  SpscQueue<int, 4> q;
  constexpr int kTotal = 1000;
  for (int i = 0; i < kTotal; ++i) q.Push(i);
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(&out), static_cast<size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
  EXPECT_TRUE(q.Empty());
}

TEST(SpscQueueTest, InterleavedPushDrainPreservesOrder) {
  SpscQueue<int, 8> q;
  std::vector<int> out;
  int next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k <= round % 5; ++k) q.Push(next++);
    q.DrainInto(&out);
  }
  q.DrainInto(&out);
  ASSERT_EQ(out.size(), static_cast<size_t>(next));
  for (int i = 0; i < next; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(SpscQueueTest, MoveOnlyFriendlyElements) {
  SpscQueue<std::string, 4> q;
  for (int i = 0; i < 20; ++i) q.Push("item-" + std::to_string(i));
  std::vector<std::string> out;
  q.DrainInto(&out);
  ASSERT_EQ(out.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], "item-" + std::to_string(i));
  }
}

TEST(SpscQueueTest, DestructorReclaimsUndrainedSegments) {
  SpscQueue<int, 4> q;
  for (int i = 0; i < 100; ++i) q.Push(i);
  // Destructor must free the whole chain (ASan/LSan would flag a leak).
}

/// Concurrent producer/consumer: the consumer drains while the producer is
/// still pushing. Verifies lock-free publication (TSan covers the memory
/// ordering) and that the concatenation of drains is the exact push sequence.
TEST(SpscQueueTest, ConcurrentProducerConsumerFifo) {
  constexpr int kTotal = 200000;
  SpscQueue<int, 64> q;
  std::atomic<bool> done{false};

  std::thread producer([&q, &done] {
    for (int i = 0; i < kTotal; ++i) q.Push(i);
    done.store(true, std::memory_order_release);
  });

  std::vector<int> out;
  out.reserve(kTotal);
  while (out.size() < static_cast<size_t>(kTotal)) {
    q.DrainInto(&out);
    if (done.load(std::memory_order_acquire) &&
        out.size() < static_cast<size_t>(kTotal)) {
      q.DrainInto(&out);
    }
  }
  producer.join();
  EXPECT_EQ(q.DrainInto(&out), 0u);

  ASSERT_EQ(out.size(), static_cast<size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(out[static_cast<size_t>(i)], i) << "FIFO violated at " << i;
  }
}

/// Role hand-off: different threads may produce over the queue's lifetime as
/// long as an external happens-before edge separates them (here: join).
/// Mirrors how the sharded tracker's ring sees the stream thread produce and
/// a (possibly different) pool worker drain, separated by the pool barrier.
TEST(SpscQueueTest, ProducerRoleHandOffAcrossThreads) {
  SpscQueue<int, 8> q;
  constexpr int kPerThread = 1000;
  for (int round = 0; round < 4; ++round) {
    std::thread producer([&q, round] {
      for (int i = 0; i < kPerThread; ++i) q.Push(round * kPerThread + i);
    });
    producer.join();  // happens-before edge to the next producer and drain
  }
  std::vector<int> out;
  q.DrainInto(&out);
  ASSERT_EQ(out.size(), static_cast<size_t>(4 * kPerThread));
  for (int i = 0; i < 4 * kPerThread; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace maritime::common
