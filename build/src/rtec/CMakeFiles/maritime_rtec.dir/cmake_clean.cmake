file(REMOVE_RECURSE
  "CMakeFiles/maritime_rtec.dir/engine.cc.o"
  "CMakeFiles/maritime_rtec.dir/engine.cc.o.d"
  "CMakeFiles/maritime_rtec.dir/interval.cc.o"
  "CMakeFiles/maritime_rtec.dir/interval.cc.o.d"
  "CMakeFiles/maritime_rtec.dir/timeline.cc.o"
  "CMakeFiles/maritime_rtec.dir/timeline.cc.o.d"
  "libmaritime_rtec.a"
  "libmaritime_rtec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maritime_rtec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
