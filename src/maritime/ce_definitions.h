#ifndef MARITIME_MARITIME_CE_DEFINITIONS_H_
#define MARITIME_MARITIME_CE_DEFINITIONS_H_

#include "maritime/knowledge.h"
#include "maritime/me_stream.h"
#include "rtec/engine.h"

namespace maritime::surveillance {

/// Tunables of the CE definitions.
struct CeOptions {
  /// Figure 11(b) mode: spatial relations come precomputed as `close` facts
  /// in the input stream (via a SpatialFactTable) instead of being computed
  /// on demand by Haversine reasoning during recognition.
  bool use_spatial_facts = false;

  /// suspicious(Area) needs at least this many vessels stopped close to the
  /// area (paper rule-set (3): "at least four vessels", set by domain
  /// experts).
  int suspicious_min_vessels = 4;

  /// Registers the extension CE adrift(Vessel) (see MaritimeSchema::adrift).
  /// Vessel-keyed CEs are exact on a single engine; under partitioned
  /// recognition a vessel whose episode spans the partition boundary can be
  /// seen by two engines, so counts may differ slightly from the
  /// single-processor run (area-keyed CEs are unaffected — MEs are routed
  /// by location). The Figure 11 benches disable this to reproduce the
  /// paper's exact CE set.
  bool enable_adrift = true;
};

/// Registers on `engine`, in dependency order:
///  - the durative input MEs stopped(Vessel) and lowSpeed(Vessel), driven by
///    the tracker's episode marker events;
///  - the CE fluents suspicious(Area) (rule-set (3)) and
///    illegalFishing(Area) (rule-set (4), with the termination conditions
///    the paper describes but omits for space);
///  - the CE events illegalShipping(Area) (rule (5)) and
///    dangerousShipping(Area) (rule (6)).
///
/// `kb` must outlive the engine. `facts` is required (and must outlive the
/// engine) when options.use_spatial_facts is true; ignored otherwise.
void RegisterMaritimeCes(rtec::Engine& engine, const MaritimeSchema& schema,
                         const KnowledgeBase* kb,
                         const SpatialFactTable* facts, CeOptions options);

}  // namespace maritime::surveillance

#endif  // MARITIME_MARITIME_CE_DEFINITIONS_H_
