# Empty dependencies file for fig8_rmse.
# This may be replaced when dependencies are built.
