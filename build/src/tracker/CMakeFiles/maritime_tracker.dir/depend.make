# Empty dependencies file for maritime_tracker.
# This may be replaced when dependencies are built.
