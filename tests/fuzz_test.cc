// Robustness "fuzz" tests: deterministic random garbage and mutations
// against the parsing layers. The Data Scanner faces radio noise in
// production ("AIS messages may be delayed, intermittent, or conflicting");
// nothing it ingests may crash it or smuggle an invalid tuple through.

#include <gtest/gtest.h>

#include "ais/messages.h"
#include "ais/scanner.h"
#include "common/rng.h"
#include "stream/csv.h"

namespace maritime {
namespace {

std::string RandomLine(Rng& rng, size_t max_len) {
  const size_t len = rng.NextBelow(max_len);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return s;
}

TEST(ScannerFuzzTest, RandomBytesNeverAcceptedNorCrash) {
  ais::DataScanner scanner;
  Rng rng(31337);
  for (int i = 0; i < 5000; ++i) {
    const auto r = scanner.FeedLine(RandomLine(rng, 120), i);
    EXPECT_FALSE(r.ok()) << "random garbage must never decode";
  }
  EXPECT_EQ(scanner.stats().accepted, 0u);
  EXPECT_EQ(scanner.stats().lines, 5000u);
}

TEST(ScannerFuzzTest, RandomPrintableSentencesNeverAccepted) {
  // Lines that look NMEA-ish but are random: framing plus junk fields.
  ais::DataScanner scanner;
  Rng rng(31338);
  for (int i = 0; i < 3000; ++i) {
    std::string body = "AIVDM,";
    const size_t len = rng.NextBelow(60);
    for (size_t j = 0; j < len; ++j) {
      body.push_back(static_cast<char>(32 + rng.NextBelow(95)));
    }
    const std::string line = "!" + body + "*" + ais::NmeaChecksum(body);
    const auto r = scanner.FeedLine(line, i);
    if (r.ok()) {
      // Astronomically unlikely; if it happens the tuple must be sane.
      EXPECT_TRUE(geo::IsValidPosition(r.value().pos));
    }
  }
}

TEST(ScannerFuzzTest, MutatedValidSentencesEitherRejectOrDecodeSane) {
  Rng rng(31339);
  ais::PositionReport base;
  base.mmsi = 237000111;
  base.lon_deg = 24.5;
  base.lat_deg = 37.5;
  base.sog_knots = 12.0;
  base.cog_deg = 90.0;
  const std::string valid = ais::EncodeToNmea(base).front();
  ais::DataScanner scanner;
  size_t accepted = 0;
  for (int i = 0; i < 4000; ++i) {
    std::string line = valid;
    const int mutations = static_cast<int>(rng.NextInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      line[rng.NextBelow(line.size())] =
          static_cast<char>(32 + rng.NextBelow(95));
    }
    const auto r = scanner.FeedTagged(std::to_string(i) + "\t" + line);
    if (r.ok()) {
      ++accepted;
      // Whatever decodes must be an in-range position (a mutation that
      // happens to keep the checksum valid still can't produce lat > 90).
      EXPECT_TRUE(geo::IsValidPosition(r.value().pos)) << line;
    }
  }
  // The checksum catches essentially all single/multi character mutations
  // except those inside the checksum-then-recompute space; acceptance must
  // be rare.
  EXPECT_LT(accepted, 40u);
}

TEST(ScannerFuzzTest, FragmentFloodIsBounded) {
  // An attacker (or a broken receiver) streaming first-fragments must not
  // grow scanner state without bound: sequence ids are 0..9 per channel.
  ais::DataScanner scanner;
  ais::PositionReport base;
  base.mmsi = 1;
  base.lon_deg = 24.0;
  base.lat_deg = 37.0;
  for (int i = 0; i < 1000; ++i) {
    ais::NmeaSentence s;
    s.fragment_count = 2;
    s.fragment_index = 1;
    s.sequence_id = i % 10;
    s.channel = 'A' + (i % 2);
    s.payload = "177KQJ5000G?tO`K>RA1wUbN0TKH";
    // Decode outcome irrelevant: only the pending-fragment bound is tested.
    (void)scanner.FeedLine(ais::FormatSentence(s), i);
  }
  EXPECT_EQ(scanner.stats().fragment_pending, 1000u);
  // 10 sequence ids x 2 channels at most.
  // (Pending groups live in the assembler; the bound is structural.)
}

TEST(CsvFuzzTest, RandomDocumentsNeverCrash) {
  Rng rng(31340);
  for (int doc = 0; doc < 200; ++doc) {
    std::string csv;
    const int lines = static_cast<int>(rng.NextInt(0, 30));
    for (int i = 0; i < lines; ++i) {
      csv += RandomLine(rng, 60);
      csv += '\n';
    }
    size_t skipped = 0;
    const auto parsed =
        stream::ParsePositionsCsv(csv, stream::CsvFormat(), &skipped);
    if (parsed.ok()) {
      for (const auto& t : parsed.value()) {
        EXPECT_TRUE(geo::IsValidPosition(t.pos));
      }
    }
  }
}

TEST(PayloadFuzzTest, RandomBitsThroughDecoders) {
  Rng rng(31341);
  for (int i = 0; i < 3000; ++i) {
    std::vector<uint8_t> bits;
    const size_t n = rng.NextBelow(500);
    for (size_t j = 0; j < n; ++j) {
      bits.push_back(static_cast<uint8_t>(rng.NextBelow(2)));
    }
    const auto pos = ais::DecodePositionReport(bits);
    if (pos.ok()) {
      // Structurally valid decodes may still carry sentinel coordinates;
      // HasPosition() is the gate the scanner applies.
      EXPECT_TRUE(!pos.value().HasPosition() ||
                  geo::IsValidPosition(geo::GeoPoint{pos.value().lon_deg,
                                                     pos.value().lat_deg}));
    }
    (void)ais::DecodeStaticVoyageData(bits);  // must not crash
  }
}

}  // namespace
}  // namespace maritime
