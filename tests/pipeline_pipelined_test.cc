// The tentpole guarantee of pipelined slide execution: at any pipeline depth
// (slides staged ahead on the pool's tracker lane while the caller
// recognizes earlier slides) the pipeline produces bit-identical
// SlideReports and CE output to strict serial execution — including across
// a SaveSnapshot/Resume cut taken at a commit barrier mid-run.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "maritime/pipeline.h"
#include "sim/generator.h"
#include "sim/world.h"
#include "stream/replayer.h"

namespace maritime {
namespace {

using surveillance::EngineMode;
using surveillance::PipelineConfig;
using surveillance::SlideReport;
using surveillance::SurveillancePipeline;

sim::WorldParams SmallWorldParams() {
  sim::WorldParams p;
  p.ports = 8;
  p.protected_areas = 3;
  p.forbidden_fishing_areas = 3;
  p.shallow_areas = 2;
  return p;
}

/// Everything deterministic in a SlideReport (timing fields excluded).
struct Observed {
  Timestamp query_time = 0;
  size_t raw_positions = 0;
  size_t critical_points = 0;
  std::vector<rtec::RecognitionResult> recognition;
  bool final_flush = false;
};

Observed Capture(const SlideReport& r) {
  Observed o;
  o.query_time = r.query_time;
  o.raw_positions = r.raw_positions;
  o.critical_points = r.critical_points;
  o.recognition = r.recognition;
  o.final_flush = r.final_flush;
  return o;
}

void ExpectIdentical(const std::vector<Observed>& expected,
                     const std::vector<Observed>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(label + ", slide " + std::to_string(i));
    EXPECT_EQ(expected[i].query_time, actual[i].query_time);
    EXPECT_EQ(expected[i].raw_positions, actual[i].raw_positions);
    EXPECT_EQ(expected[i].critical_points, actual[i].critical_points);
    EXPECT_EQ(expected[i].final_flush, actual[i].final_flush);
    ASSERT_EQ(expected[i].recognition.size(), actual[i].recognition.size());
    for (size_t p = 0; p < expected[i].recognition.size(); ++p) {
      EXPECT_TRUE(expected[i].recognition[p] == actual[i].recognition[p])
          << "partition " << p << " diverged at q=" << expected[i].query_time;
    }
  }
}

class PipelinedDifferentialTest : public ::testing::Test {
 protected:
  std::vector<stream::PositionTuple> MakeStream(sim::World* world) {
    sim::FleetConfig fleet_cfg;
    fleet_cfg.vessels = 12;
    fleet_cfg.duration = 4 * kHour;
    fleet_cfg.seed = 23;
    sim::FleetSimulator fleet(world, fleet_cfg);
    return fleet.Generate();
  }

  std::vector<Observed> RunWhole(const sim::World& world,
                                 const std::vector<stream::PositionTuple>& in,
                                 PipelineConfig cfg) {
    stream::StreamReplayer replayer(in);
    SurveillancePipeline pipeline(&world.knowledge, cfg);
    std::vector<Observed> out;
    pipeline.Run(replayer,
                 [&](const SlideReport& r) { out.push_back(Capture(r)); });
    return out;
  }

  /// Depths 1/2/3 against the serial reference, for one base config.
  void RunDepthDifferential(PipelineConfig cfg) {
    sim::World world = sim::BuildWorld(/*seed=*/17, SmallWorldParams());
    const std::vector<stream::PositionTuple> tuples = MakeStream(&world);
    ASSERT_FALSE(tuples.empty());

    cfg.pipeline_depth = 1;
    const std::vector<Observed> reference = RunWhole(world, tuples, cfg);
    ASSERT_GE(reference.size(), 8u)
        << "stream too short for a meaningful differential";

    for (int depth : {2, 3}) {
      cfg.pipeline_depth = depth;
      const std::vector<Observed> pipelined = RunWhole(world, tuples, cfg);
      ExpectIdentical(reference, pipelined,
                      "pipeline depth " + std::to_string(depth));
    }
  }
};

TEST_F(PipelinedDifferentialTest, DepthsBitIdenticalNaive) {
  PipelineConfig cfg;
  cfg.window = stream::WindowSpec{kHour, 10 * kMinute};
  cfg.partitions = 1;
  cfg.archive = true;
  RunDepthDifferential(cfg);
}

TEST_F(PipelinedDifferentialTest, DepthsBitIdenticalShardedIncremental) {
  PipelineConfig cfg;
  cfg.window = stream::WindowSpec{kHour, 10 * kMinute};
  cfg.partitions = 2;
  cfg.tracker_shards = 4;
  cfg.archive = true;
  cfg.incremental_recognition = true;
  cfg.parallel_recognition_keys = true;
  RunDepthDifferential(cfg);
}

TEST_F(PipelinedDifferentialTest, DepthsBitIdenticalAutoEngine) {
  // The auto engine (window-shape resolution + adaptive full regeneration)
  // must not perturb CE output either; the serial reference here runs auto
  // too, and a second serial run with the legacy naive flag pins the
  // auto-vs-naive equivalence end to end.
  PipelineConfig cfg;
  cfg.window = stream::WindowSpec{kHour, 10 * kMinute};
  cfg.partitions = 1;
  cfg.archive = true;
  cfg.recognition_engine = EngineMode::kAuto;
  RunDepthDifferential(cfg);

  sim::World world = sim::BuildWorld(/*seed=*/17, SmallWorldParams());
  const std::vector<stream::PositionTuple> tuples = MakeStream(&world);
  cfg.pipeline_depth = 1;
  const std::vector<Observed> auto_run = RunWhole(world, tuples, cfg);
  PipelineConfig naive = cfg;
  naive.recognition_engine = EngineMode::kNaive;
  const std::vector<Observed> naive_run = RunWhole(world, tuples, naive);
  ExpectIdentical(naive_run, auto_run, "auto vs naive");
}

TEST_F(PipelinedDifferentialTest, StageCommitInterfaceKeepsSlideOrder) {
  // Driving the pipeline by hand through StageSlide/CommitNextSlide — and
  // mixing in RunSlide, which must drain staged slides first — matches Run.
  sim::World world = sim::BuildWorld(/*seed=*/17, SmallWorldParams());
  const std::vector<stream::PositionTuple> tuples = MakeStream(&world);

  PipelineConfig cfg;
  cfg.window = stream::WindowSpec{kHour, 10 * kMinute};
  cfg.tracker_shards = 2;
  cfg.pipeline_depth = 3;
  const std::vector<Observed> reference = [&] {
    PipelineConfig serial = cfg;
    serial.pipeline_depth = 1;
    return RunWhole(world, tuples, serial);
  }();

  stream::StreamReplayer replayer(tuples);
  SurveillancePipeline pipeline(&world.knowledge, cfg);
  stream::QueryTimeSequence queries(cfg.window, replayer.first_timestamp());
  const Timestamp last = replayer.last_timestamp();
  std::vector<Observed> manual;
  int slide = 0;
  while (true) {
    const Timestamp q = queries.Fire();
    const auto batch = replayer.NextBatch(q);
    if (slide % 3 == 2) {
      // RunSlide interleaved: must first commit the staged backlog.
      std::vector<Observed> drained;
      pipeline.DrainStagedSlides(
          [&](const SlideReport& r) { drained.push_back(Capture(r)); });
      for (const Observed& o : drained) manual.push_back(o);
      EXPECT_EQ(pipeline.staged_slide_count(), 0u);
      manual.push_back(Capture(pipeline.RunSlide(q, batch)));
    } else {
      pipeline.StageSlide(q, batch);
      while (pipeline.staged_slide_count() >= 2) {
        manual.push_back(Capture(pipeline.CommitNextSlide()));
      }
    }
    ++slide;
    if (q >= last) break;
  }
  pipeline.DrainStagedSlides(
      [&](const SlideReport& r) { manual.push_back(Capture(r)); });
  const SlideReport flush = pipeline.Finish();
  if (!flush.recognition.empty()) manual.push_back(Capture(flush));
  ExpectIdentical(reference, manual, "manual stage/commit drive");
}

TEST_F(PipelinedDifferentialTest, SnapshotResumeAtCommitBarrierMidRun) {
  // Pipelined run cut at a commit barrier: drain the staged slides, save a
  // snapshot to disk, restore into a fresh pipeline, and Resume (itself
  // pipelined). The post-cut output must be bit-identical to the
  // uninterrupted serial reference.
  sim::World world = sim::BuildWorld(/*seed=*/17, SmallWorldParams());
  const std::vector<stream::PositionTuple> tuples = MakeStream(&world);

  PipelineConfig cfg;
  cfg.window = stream::WindowSpec{kHour, 10 * kMinute};
  cfg.partitions = 2;
  cfg.tracker_shards = 2;
  cfg.archive = true;
  cfg.incremental_recognition = true;
  cfg.pipeline_depth = 3;

  const std::vector<Observed> reference = [&] {
    PipelineConfig serial = cfg;
    serial.pipeline_depth = 1;
    return RunWhole(world, tuples, serial);
  }();
  constexpr int kCut = 5;
  ASSERT_GE(reference.size(), static_cast<size_t>(kCut) + 2);

  const std::string path =
      ::testing::TempDir() + "/pipelined_cut_snapshot.msnp";
  {
    stream::StreamReplayer replayer(tuples);
    SurveillancePipeline victim(&world.knowledge, cfg);
    stream::QueryTimeSequence queries(cfg.window, replayer.first_timestamp());
    int committed = 0;
    while (committed < kCut) {
      const Timestamp q = queries.Fire();
      victim.StageSlide(q, replayer.NextBatch(q));
      while (victim.staged_slide_count() >=
             static_cast<size_t>(cfg.pipeline_depth)) {
        victim.CommitNextSlide();
        ++committed;
      }
    }
    // The commit barrier: every staged slide lands before the snapshot.
    victim.DrainStagedSlides();
    // The victim may have committed past kCut while draining; recompute the
    // true cut from its last query time below via the reference timeline.
    ASSERT_EQ(victim.staged_slide_count(), 0u);
    ASSERT_TRUE(victim.SaveSnapshot(path).ok());
  }

  SurveillancePipeline recovered(&world.knowledge, cfg);
  ASSERT_TRUE(recovered.LoadSnapshot(path).ok());
  stream::StreamReplayer resumed_stream(tuples);
  std::vector<Observed> post;
  recovered.Resume(resumed_stream,
                   [&](const SlideReport& r) { post.push_back(Capture(r)); });
  std::remove(path.c_str());

  ASSERT_FALSE(post.empty());
  // Align on query time: the resumed output must equal the reference suffix
  // starting right after the snapshot's last committed slide.
  size_t start = 0;
  while (start < reference.size() &&
         reference[start].query_time != post.front().query_time) {
    ++start;
  }
  ASSERT_LT(start, reference.size()) << "resume start not in reference";
  const std::vector<Observed> expected(
      reference.begin() + static_cast<ptrdiff_t>(start), reference.end());
  ExpectIdentical(expected, post, "post-snapshot resume");
}

}  // namespace
}  // namespace maritime
