#ifndef MARITIME_MOD_CLUSTERING_H_
#define MARITIME_MOD_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "mod/store.h"

namespace maritime::mod {

/// Spatiotemporal trip clustering (paper Section 3.3): "Hermes MOD
/// incorporates an algorithm for spatiotemporal clustering, which can help
/// exploring periodicity of trips. Indeed, two (or more) trajectory clusters
/// may be almost identical spatially, but they are distinct because the
/// temporal dimension is taken into consideration."
///
/// The trip-to-trip distance samples both trips at `samples` aligned
/// fractions of their durations and averages the Haversine deviation
/// (spatial part); the temporal part compares time-of-day of departure, so
/// the same ferry run at 08:00 and at 20:00 lands in different clusters even
/// though the paths coincide.

struct ClusteringParams {
  /// Trips join a cluster when their mean spatial deviation from the
  /// cluster's seed trip is below this.
  double spatial_threshold_m = 5000.0;
  /// ... and their departure time-of-day differs by less than this
  /// (circular distance within the day).
  Duration temporal_threshold = 2 * kHour;
  /// Shape sampling resolution.
  int samples = 8;
};

struct TripCluster {
  std::vector<size_t> trip_indices;  ///< Indices into store.trips().
  size_t seed = 0;                   ///< Index of the cluster's seed trip.
};

/// Mean spatial deviation between two trips, sampling both shapes at the
/// same relative progress (meters).
double TripShapeDistanceMeters(const Trip& a, const Trip& b, int samples = 8);

/// Circular time-of-day distance between the two departures (seconds).
Duration DepartureTimeOfDayDistance(const Trip& a, const Trip& b);

/// Greedy seed-based clustering: trips are scanned in store order; each
/// joins the first cluster whose seed is within both thresholds, otherwise
/// it seeds a new cluster. Deterministic; O(clusters × trips × samples).
std::vector<TripCluster> ClusterTrips(const TrajectoryStore& store,
                                      const ClusteringParams& params = {});

/// Similarity search over the archive (a Hermes MOD query operator, paper
/// Section 6): the `k` trips most similar in shape to `query`, nearest
/// first, excluding `query` itself if it is in the store.
std::vector<size_t> MostSimilarTrips(const TrajectoryStore& store,
                                     const Trip& query, size_t k,
                                     int samples = 8);

}  // namespace maritime::mod

#endif  // MARITIME_MOD_CLUSTERING_H_
