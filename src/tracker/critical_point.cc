#include "tracker/critical_point.h"

namespace maritime::tracker {

std::string CriticalFlagsToString(uint32_t flags) {
  static constexpr struct {
    CriticalFlag flag;
    const char* name;
  } kNames[] = {
      {kFirst, "first"},
      {kGapStart, "gap_start"},
      {kGapEnd, "gap_end"},
      {kTurn, "turn"},
      {kSmoothTurn, "smooth_turn"},
      {kSpeedChange, "speed_change"},
      {kStopStart, "stop_start"},
      {kStopEnd, "stop_end"},
      {kSlowMotionStart, "slow_start"},
      {kSlowMotionEnd, "slow_end"},
      {kLast, "last"},
      {kSlowMotionWaypoint, "slow_waypoint"},
  };
  std::string out;
  for (const auto& [flag, name] : kNames) {
    if (flags & flag) {
      if (!out.empty()) out += '|';
      out += name;
    }
  }
  return out.empty() ? "none" : out;
}

}  // namespace maritime::tracker
