#ifndef MARITIME_GEO_GEO_POINT_H_
#define MARITIME_GEO_GEO_POINT_H_

#include <cmath>
#include <ostream>
#include <span>
#include <vector>

namespace maritime::geo {

/// Mean Earth radius in meters (IUGG value used by the Haversine formula).
inline constexpr double kEarthRadiusMeters = 6371008.8;

inline constexpr double kPi = 3.14159265358979323846;

/// Conversion between knots and meters/second (1 knot = 1852 m / 3600 s).
inline constexpr double kKnotsToMps = 1852.0 / 3600.0;
inline constexpr double kMpsToKnots = 3600.0 / 1852.0;

inline constexpr double DegToRad(double deg) { return deg * kPi / 180.0; }
inline constexpr double RadToDeg(double rad) { return rad * 180.0 / kPi; }

/// A geographic position in degrees: longitude in [-180, 180], latitude in
/// [-90, 90]. Vessels are abstracted as 2-D point entities (paper Section 2).
struct GeoPoint {
  double lon = 0.0;
  double lat = 0.0;

  friend bool operator==(const GeoPoint& a, const GeoPoint& b) {
    return a.lon == b.lon && a.lat == b.lat;
  }
};

inline std::ostream& operator<<(std::ostream& os, const GeoPoint& p) {
  return os << "(" << p.lon << "," << p.lat << ")";
}

/// True iff lon/lat are inside their legal ranges.
bool IsValidPosition(const GeoPoint& p);

/// Great-circle distance between `a` and `b` in meters (Haversine formula,
/// the distance the paper uses both in the tracker and in RTEC's `close`
/// predicate).
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

/// One endpoint of a Haversine batch with its latitude trig hoisted: every
/// distance against the same reference point reuses cos(lat_ref) instead of
/// recomputing it, which is the dominant shared subexpression of the formula
/// (and of the planar projection in segment distances). MetersTo evaluates
/// the exact expression HaversineMeters does, in the same order, so batched
/// and scalar distances are bit-identical.
struct HaversineRef {
  double lon = 0.0;
  double lat = 0.0;
  double cos_phi = 1.0;  ///< cos(DegToRad(lat)).

  HaversineRef() = default;
  explicit HaversineRef(const GeoPoint& p)
      : lon(p.lon), lat(p.lat), cos_phi(std::cos(DegToRad(p.lat))) {}

  double MetersTo(const GeoPoint& q) const {
    const double phi2 = DegToRad(q.lat);
    const double dphi = DegToRad(q.lat - lat);
    const double dlambda = DegToRad(q.lon - lon);
    const double sin_dphi = std::sin(dphi / 2.0);
    const double sin_dlambda = std::sin(dlambda / 2.0);
    const double h =
        sin_dphi * sin_dphi +
        cos_phi * std::cos(phi2) * sin_dlambda * sin_dlambda;
    return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
  }
};

/// Batched Haversine over a struct-of-arrays coordinate batch:
/// out_m[i] = HaversineMeters(ref, {lons[i], lats[i]}), with the reference
/// trig hoisted out of the loop. lons, lats and out_m must have equal sizes.
void HaversineMetersMany(const GeoPoint& ref, std::span<const double> lons,
                         std::span<const double> lats, std::span<double> out_m);

/// Batched Haversine over a contiguous point array (array-of-structs form).
void HaversineMetersMany(const GeoPoint& ref, std::span<const GeoPoint> pts,
                         std::span<double> out_m);

/// Initial bearing from `a` to `b` in degrees clockwise from true north,
/// normalized to [0, 360).
double InitialBearingDeg(const GeoPoint& a, const GeoPoint& b);

/// Point reached by travelling `distance_m` meters from `origin` on the
/// great circle with initial bearing `bearing_deg`.
GeoPoint DestinationPoint(const GeoPoint& origin, double bearing_deg,
                          double distance_m);

/// Linear interpolation between `a` (at fraction 0) and `b` (at fraction 1).
/// The paper applies linear interpolation between successive samples; over
/// the short distances involved a planar interpolation of coordinates is an
/// adequate local approximation (paper footnote 2).
GeoPoint Interpolate(const GeoPoint& a, const GeoPoint& b, double fraction);

/// Arithmetic centroid of a non-empty set of points (used to represent a
/// long-term stop by a single point, paper Section 3.1).
GeoPoint Centroid(const std::vector<GeoPoint>& pts);

/// Coordinate-wise median of a non-empty set of points (used to represent a
/// slow-motion episode, paper Section 3.1).
GeoPoint MedianPoint(std::vector<GeoPoint> pts);

/// Normalizes an angle in degrees to [0, 360).
double NormalizeBearingDeg(double deg);

/// Smallest signed difference `b - a` between two bearings, in (-180, 180].
double BearingDifferenceDeg(double a, double b);

}  // namespace maritime::geo

#endif  // MARITIME_GEO_GEO_POINT_H_
