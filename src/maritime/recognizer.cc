#include "maritime/recognizer.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace maritime::surveillance {

CERecognizer::CERecognizer(const KnowledgeBase* kb, RecognizerConfig config)
    : kb_(kb), config_(config) {
  assert(kb_ != nullptr);
  switch (config_.engine) {
    case EngineMode::kFromFlag:
      break;
    case EngineMode::kNaive:
      config_.incremental = false;
      break;
    case EngineMode::kIncremental:
      config_.incremental = true;
      break;
    case EngineMode::kAuto:
      // Suffix reuse only pays when the window outlives the slide; at
      // ω close to β every slide dirties (almost) the whole window.
      config_.incremental = config_.window.range >= 3 * config_.window.slide;
      break;
  }
  rtec::EngineOptions opts;
  opts.incremental = config_.incremental;
  opts.adaptive_full_regen = config_.engine == EngineMode::kAuto;
  opts.pool = config_.parallel_keys ? &common::ThreadPool::Shared() : nullptr;
  opts.min_parallel_keys = config_.min_parallel_keys;
  opts.scoped_dirty = config_.scoped_dirty;
  engine_ = std::make_unique<rtec::Engine>(config_.window, kb_, opts);
  schema_ = MaritimeSchema::Declare(*engine_);
  RegisterMaritimeCes(*engine_, schema_, kb_,
                      config_.ce.use_spatial_facts ? &facts_ : nullptr,
                      config_.ce);
}

void CERecognizer::Feed(const tracker::CriticalPoint& cp) {
  ++feed_stats_.critical_points;
  feed_stats_.me_events += FeedCriticalPoint(*engine_, schema_, cp);
  if (config_.ce.use_spatial_facts) {
    // The trajectory detection side accompanies each ME with facts naming
    // the areas the vessel is currently close to (Figure 11(b) setting);
    // recognition then skips on-demand spatial reasoning entirely.
    std::vector<int32_t> areas = kb_->AreasCloseTo(cp.pos);
    feed_stats_.spatial_facts += areas.size();
    facts_.AddFactGroup(cp.mmsi, cp.tau, std::move(areas));
  }
}

void CERecognizer::Feed(std::span<const tracker::CriticalPoint> cps) {
  if (!config_.ce.use_spatial_facts) {
    for (const tracker::CriticalPoint& cp : cps) Feed(cp);
    return;
  }
  // Batch the spatial-fact computation: consecutive points of a slide are
  // spatially coherent, so one shared locality cache turns most lookups
  // into a pointer compare.
  std::vector<geo::GeoPoint> pts;
  pts.reserve(cps.size());
  for (const tracker::CriticalPoint& cp : cps) pts.push_back(cp.pos);
  std::vector<std::vector<int32_t>> close = kb_->AreasCloseToAll(pts);
  for (size_t i = 0; i < cps.size(); ++i) {
    ++feed_stats_.critical_points;
    feed_stats_.me_events += FeedCriticalPoint(*engine_, schema_, cps[i]);
    feed_stats_.spatial_facts += close[i].size();
    facts_.AddFactGroup(cps[i].mmsi, cps[i].tau, std::move(close[i]));
  }
}

CERecognizer::StagedPoints CERecognizer::Stage(
    std::span<const tracker::CriticalPoint> cps) const {
  StagedPoints staged;
  staged.cps.assign(cps.begin(), cps.end());
  if (config_.ce.use_spatial_facts) {
    std::vector<geo::GeoPoint> pts;
    pts.reserve(cps.size());
    for (const tracker::CriticalPoint& cp : cps) pts.push_back(cp.pos);
    staged.close = kb_->AreasCloseToAll(pts);
  }
  return staged;
}

void CERecognizer::Feed(StagedPoints&& staged) {
  const bool spatial = config_.ce.use_spatial_facts;
  assert(!spatial || staged.close.size() == staged.cps.size());
  for (size_t i = 0; i < staged.cps.size(); ++i) {
    ++feed_stats_.critical_points;
    feed_stats_.me_events += FeedCriticalPoint(*engine_, schema_, staged.cps[i]);
    if (spatial) {
      feed_stats_.spatial_facts += staged.close[i].size();
      facts_.AddFactGroup(staged.cps[i].mmsi, staged.cps[i].tau,
                          std::move(staged.close[i]));
    }
  }
}

rtec::RecognitionResult CERecognizer::Recognize(Timestamp q) {
  if (config_.ce.use_spatial_facts) {
    facts_.PurgeBefore(q - config_.window.range);
  }
  rtec::RecognitionResult result = engine_->Recognize(q);
  if (config_.ce.use_spatial_facts) {
    result.input_events_in_window += facts_.fact_count();
  }
  return result;
}

std::string CERecognizer::Describe(const rtec::RecognizedEvent& e) const {
  return StrPrintf("%s(%s, %s) @ %lld", engine_->EventName(e.event).c_str(),
                   TermLabel(e.instance.object).c_str(),
                   TermLabel(e.instance.subject).c_str(),
                   static_cast<long long>(e.instance.t));
}

std::string CERecognizer::Describe(const rtec::RecognizedFluent& f) const {
  std::string out = StrPrintf("%s(%s)=%d",
                              engine_->FluentName(f.fluent).c_str(),
                              TermLabel(f.key).c_str(), f.value);
  for (const rtec::Interval& i : f.intervals) {
    out += StrPrintf(" (%lld,%lld]", static_cast<long long>(i.since),
                     static_cast<long long>(i.till));
  }
  return out;
}

PartitionedRecognizer::PartitionedRecognizer(const KnowledgeBase& kb,
                                             RecognizerConfig config,
                                             int partitions,
                                             common::ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &common::ThreadPool::Shared()) {
  assert(partitions >= 1);
  // Order areas west to east by polygon centroid and cut into equal bands
  // (the paper splits the surveillance region into a west and an east part).
  std::vector<std::pair<double, int32_t>> by_lon;
  for (const AreaInfo& a : kb.areas()) {
    by_lon.emplace_back(a.polygon.VertexCentroid().lon, a.id);
  }
  std::sort(by_lon.begin(), by_lon.end());
  const size_t n = by_lon.size();
  const size_t per =
      (n + static_cast<size_t>(partitions) - 1) /
      std::max<size_t>(1, static_cast<size_t>(partitions));
  for (int p = 0; p < partitions; ++p) {
    const size_t lo = std::min(n, static_cast<size_t>(p) * per);
    const size_t hi = std::min(n, lo + per);
    std::vector<int32_t> ids;
    for (size_t i = lo; i < hi; ++i) ids.push_back(by_lon[i].second);
    Partition part;
    part.min_lon = p == 0 || lo >= n ? -180.0 : by_lon[lo].first;
    part.kb = std::make_unique<KnowledgeBase>(kb.Restricted(ids));
    part.rec = std::make_unique<CERecognizer>(part.kb.get(), config);
    parts_.push_back(std::move(part));
  }
}

size_t PartitionedRecognizer::PartitionFor(const geo::GeoPoint& p) const {
  size_t chosen = 0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (p.lon >= parts_[i].min_lon) chosen = i;
  }
  return chosen;
}

void PartitionedRecognizer::Feed(const tracker::CriticalPoint& cp) {
  parts_[PartitionFor(cp.pos)].rec->Feed(cp);
}

void PartitionedRecognizer::Feed(std::span<const tracker::CriticalPoint> cps) {
  if (parts_.size() == 1) {
    parts_[0].rec->Feed(cps);
    return;
  }
  std::vector<std::vector<tracker::CriticalPoint>> buckets(parts_.size());
  for (const tracker::CriticalPoint& cp : cps) {
    buckets[PartitionFor(cp.pos)].push_back(cp);
  }
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (!buckets[i].empty()) {
      parts_[i].rec->Feed(std::span<const tracker::CriticalPoint>(buckets[i]));
    }
  }
}

PartitionedRecognizer::StagedFeed PartitionedRecognizer::Stage(
    std::span<const tracker::CriticalPoint> cps) const {
  StagedFeed staged;
  staged.parts.resize(parts_.size());
  if (parts_.size() == 1) {
    staged.parts[0] = parts_[0].rec->Stage(cps);
    return staged;
  }
  std::vector<std::vector<tracker::CriticalPoint>> buckets(parts_.size());
  for (const tracker::CriticalPoint& cp : cps) {
    buckets[PartitionFor(cp.pos)].push_back(cp);
  }
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (!buckets[i].empty()) {
      staged.parts[i] = parts_[i].rec->Stage(
          std::span<const tracker::CriticalPoint>(buckets[i]));
    }
  }
  return staged;
}

void PartitionedRecognizer::Feed(StagedFeed&& staged) {
  assert(staged.parts.size() == parts_.size());
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (!staged.parts[i].cps.empty()) {
      parts_[i].rec->Feed(std::move(staged.parts[i]));
    }
  }
}

std::vector<rtec::RecognitionResult> PartitionedRecognizer::Recognize(
    Timestamp q) {
  std::vector<rtec::RecognitionResult> results(parts_.size());
  // One task per partition on the long-lived shared pool; spawning fresh
  // std::threads every slide used to dominate recognition at small slides.
  // Recognizer lane: see Engine::ForEachKey.
  pool_->ParallelFor(common::Lane::kRecognizer, parts_.size(),
                     [this, q, &results](size_t i) {
    results[i] = parts_[i].rec->Recognize(q);
    std::lock_guard<std::mutex> lock(totals_mu_);
    totals_.recognized_items += results[i].RecognizedCount();
    totals_.input_events += results[i].input_events_in_window;
  });
  {
    std::lock_guard<std::mutex> lock(totals_mu_);
    ++totals_.recognize_calls;
  }
  return results;
}

PartitionedRecognizer::RecognizeTotals PartitionedRecognizer::totals() const {
  RecognizeTotals out;
  {
    std::lock_guard<std::mutex> lock(totals_mu_);
    out = totals_;
  }
  // Cache and allocation counters live in the per-partition engines; they
  // only move during Recognize, so summing at read time needs no extra
  // locking.
  for (const Partition& p : parts_) {
    const rtec::EngineCacheStats& cs = p.rec->engine().cache_stats();
    out.cache_hits += cs.hits;
    out.cache_misses += cs.misses;
    out.cache_evictions += cs.evictions;
    out.spans_narrowed += cs.spans_narrowed;
    out.fleet_floor_hits += cs.fleet_floor_hits;
    const rtec::EngineAllocStats& as = p.rec->engine().alloc_stats();
    out.arena_bytes += as.arena_bytes;
    out.arena_chunks += as.arena_chunks;
    out.fallback_allocs += as.fallback_allocs;
  }
  return out;
}

}  // namespace maritime::surveillance
