#ifndef MARITIME_COMMON_ANNOTATIONS_H_
#define MARITIME_COMMON_ANNOTATIONS_H_

/// Annotation vocabulary of the project-specific static-analysis pass
/// (`tools/lint/maritime_lint.py`, DESIGN.md §12). The macros expand to
/// `[[clang::annotate("maritime::<tag>")]]` under Clang — visible to the
/// libclang frontend of maritime-lint — and to nothing elsewhere; the
/// portable textual frontend keys off the macro names themselves, so an
/// annotated tree analyzes identically under either frontend.
///
/// Placement grammar (enforced by convention, relied upon by the textual
/// frontend):
///   - class/struct:  `class MARITIME_ARENA_SCOPED Arena { ... };`
///   - alias:         `using PointVec MARITIME_ARENA_SCOPED = ...;`
///   - function:      `MARITIME_ARENA_ESCAPE_OK FluentTimeline Compute(...);`
///     (leading position, before the return type)
///   - data member:   `MARITIME_ARENA_ESCAPE_OK FluentTimeline empty_;`
///
/// Inline suppressions, for single call/iteration sites where an annotation
/// does not fit, carry a mandatory reason:
///   `// maritime-lint: allow(<rule>): <why this is sound>`
/// (or `allow-next-line(<rule>)` on the preceding line, or
/// `allow-file(<rule>)` once near the top of a file).

#if defined(__clang__) && !defined(SWIG)
#define MARITIME_ANNOTATE(tag) [[clang::annotate(tag)]]
#else
#define MARITIME_ANNOTATE(tag)
#endif

/// Marks a type whose instances may be backed by a slide-scoped
/// `common::Arena`: views, allocators, and containers whose storage is
/// invalidated wholesale at `Arena::Reset()`. The arena-escape rule flags any
/// data member of (or function returning) such a type outside another
/// arena-scoped type, unless the escape is certified with
/// `MARITIME_ARENA_ESCAPE_OK`. Alias types whose definition mentions an
/// arena-scoped type are arena-scoped transitively (no annotation needed).
#define MARITIME_ARENA_SCOPED MARITIME_ANNOTATE("maritime::arena_scoped")

/// Certifies one deliberate escape of an arena-scoped type: a member that is
/// provably heap-backed (default-constructed allocator) or a function whose
/// returned value/reference is committed heap state produced by the
/// copy-out-at-commit rule (DESIGN.md §10). Every use must be accompanied by
/// a comment saying why the backing is not arena memory.
#define MARITIME_ARENA_ESCAPE_OK MARITIME_ANNOTATE("maritime::arena_escape_ok")

/// Marks a function that commits per-slide scratch into long-lived state
/// (the engine's definition-commit helpers, `Recognize` itself). Inside such
/// functions the determinism rule flags range-iteration over unordered
/// containers whose visitation order could leak into committed state, unless
/// the iteration result is sorted before escaping (a `std::sort` later in the
/// same body) or the site carries an `allow(determinism)` with a reason.
#define MARITIME_COMMIT_BOUNDARY MARITIME_ANNOTATE("maritime::commit_boundary")

/// Marks a function that serializes state to an external medium (snapshot
/// writers, bench JSON emitters): byte-for-byte determinism is part of the
/// format contract (DESIGN.md §9), so the determinism rule applies exactly as
/// for MARITIME_COMMIT_BOUNDARY.
#define MARITIME_OUTPUT_PATH MARITIME_ANNOTATE("maritime::output_path")

#endif  // MARITIME_COMMON_ANNOTATIONS_H_
