// maritime-lint fixture: conforming cases for the status-discard rule —
// every returned Status/Result below is consumed (bound, tested, forwarded,
// or explicitly voided).
#include "common/annotations.h"

namespace fixtures {

Status ProbePort(int id);
Result<long> MeasureDrift();
void Log(Status s);

long Consume() {
  Status bound = ProbePort(1);         // bound to a variable
  if (!ProbePort(2).ok()) return -1;   // tested in a condition
  Log(ProbePort(3));                   // forwarded as an argument
  (void)ProbePort(4);                  // best-effort probe; result irrelevant
  return MeasureDrift().value_or(0);   // consumed through the return
}

Status Forward() {
  return ProbePort(5);  // propagated to the caller
}

}  // namespace fixtures
