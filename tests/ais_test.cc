#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "ais/bit_buffer.h"
#include "ais/messages.h"
#include "ais/nmea.h"
#include "ais/scanner.h"
#include "ais/sixbit.h"
#include "common/rng.h"

namespace maritime::ais {
namespace {

TEST(BitBufferTest, WriteReadUnsigned) {
  BitWriter w;
  w.WriteUnsigned(0b101101, 6);
  w.WriteUnsigned(0x3FF, 10);
  w.WriteUnsigned(0, 3);
  BitReader r(w.bits());
  EXPECT_EQ(r.ReadUnsigned(6), 0b101101u);
  EXPECT_EQ(r.ReadUnsigned(10), 0x3FFu);
  EXPECT_EQ(r.ReadUnsigned(3), 0u);
  EXPECT_FALSE(r.overflow());
}

TEST(BitBufferTest, SignedRoundTrip) {
  for (const int64_t v : {-1L, -128L, 127L, 0L, -42L, 55L}) {
    BitWriter w;
    w.WriteSigned(v, 8);
    BitReader r(w.bits());
    EXPECT_EQ(r.ReadSigned(8), v) << "value " << v;
  }
}

TEST(BitBufferTest, SignedWideField) {
  // Longitude raw values use 28 bits.
  for (const int64_t v : {-180 * 600000L, 180 * 600000L, 0L, -1L}) {
    BitWriter w;
    w.WriteSigned(v, 28);
    BitReader r(w.bits());
    EXPECT_EQ(r.ReadSigned(28), v);
  }
}

TEST(BitBufferTest, OverflowReadsZeroAndFlags) {
  BitWriter w;
  w.WriteUnsigned(0xFF, 8);
  BitReader r(w.bits());
  EXPECT_EQ(r.ReadUnsigned(8), 0xFFu);
  EXPECT_EQ(r.ReadUnsigned(8), 0u);
  EXPECT_TRUE(r.overflow());
}

TEST(BitBufferTest, SixbitStringRoundTrip) {
  BitWriter w;
  w.WriteSixbitString("HELLO WORLD 42", 20);
  BitReader r(w.bits());
  EXPECT_EQ(r.ReadSixbitString(20), "HELLO WORLD 42");
}

TEST(BitBufferTest, SixbitStringLowercaseMapsToUpper) {
  BitWriter w;
  w.WriteSixbitString("abc", 5);
  BitReader r(w.bits());
  EXPECT_EQ(r.ReadSixbitString(5), "ABC");
}

TEST(SixbitTest, ArmorCharMapping) {
  EXPECT_EQ(ArmorChar(0), '0');
  EXPECT_EQ(ArmorChar(39), 'W');
  EXPECT_EQ(ArmorChar(40), '`');
  EXPECT_EQ(ArmorChar(63), 'w');
}

TEST(SixbitTest, DearmorInvertsArmor) {
  for (int v = 0; v < 64; ++v) {
    EXPECT_EQ(DearmorChar(ArmorChar(static_cast<uint8_t>(v))), v);
  }
  EXPECT_EQ(DearmorChar('X'), -1);  // 'X' is not in the armoring alphabet
  EXPECT_EQ(DearmorChar(' '), -1);
}

TEST(SixbitTest, PayloadRoundTripAllFillSizes) {
  Rng rng(5);
  for (int len = 1; len <= 24; ++len) {
    std::vector<uint8_t> bits;
    for (int i = 0; i < len; ++i) {
      bits.push_back(static_cast<uint8_t>(rng.NextBelow(2)));
    }
    int fill = -1;
    const std::string payload = ArmorPayload(bits, &fill);
    EXPECT_GE(fill, 0);
    EXPECT_LE(fill, 5);
    const auto back = DearmorPayload(payload, fill);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back.value(), bits) << "length " << len;
  }
}

TEST(SixbitTest, DearmorRejectsBadInput) {
  EXPECT_FALSE(DearmorPayload("1", 6).ok());   // fill out of range
  EXPECT_FALSE(DearmorPayload("~", 0).ok());   // bad character
  EXPECT_FALSE(DearmorPayload("1", -1).ok());
}

TEST(NmeaTest, ChecksumMatchesKnownSentence) {
  // Classic reference sentence from the AIVDM documentation.
  EXPECT_EQ(NmeaChecksum("AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0"), "5C");
}

TEST(NmeaTest, FormatParseRoundTrip) {
  NmeaSentence s;
  s.fragment_count = 2;
  s.fragment_index = 1;
  s.sequence_id = 3;
  s.channel = 'B';
  s.payload = "177KQJ5000G?tO`K>RA1wUbN0TKH";
  s.fill_bits = 0;
  const std::string line = FormatSentence(s);
  const auto parsed = ParseSentence(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().fragment_count, 2);
  EXPECT_EQ(parsed.value().fragment_index, 1);
  EXPECT_EQ(parsed.value().sequence_id, 3);
  EXPECT_EQ(parsed.value().channel, 'B');
  EXPECT_EQ(parsed.value().payload, s.payload);
}

TEST(NmeaTest, ChecksumComparisonIsCaseInsensitive) {
  // Real AIS feeds emit lowercase hex checksums (`*3f`); both casings must
  // be accepted.
  NmeaSentence s;
  s.channel = 'B';
  s.payload = "177KQJ5000G?tO`K>RA1wUbN0TKH";
  // This body is the documentation reference sentence; its checksum is "5C",
  // which contains a hex letter so the casings genuinely differ.
  const std::string line = FormatSentence(s);
  ASSERT_TRUE(ParseSentence(line).ok());
  std::string lower = line;
  for (size_t i = lower.size() - 2; i < lower.size(); ++i) {
    if (lower[i] >= 'A' && lower[i] <= 'F') {
      lower[i] = static_cast<char>(lower[i] - 'A' + 'a');
    }
  }
  // The reference sentence's checksum is "5C" -> "5c": genuinely mixed-case.
  ASSERT_NE(lower, line);
  EXPECT_TRUE(ParseSentence(lower).ok()) << lower;
}

TEST(NmeaTest, ParseRejectsBadChecksum) {
  const auto r =
      ParseSentence("!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*00");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(NmeaTest, ParseRejectsFraming) {
  EXPECT_FALSE(ParseSentence("").ok());
  EXPECT_FALSE(ParseSentence("$GPGGA,foo*00").ok());
  EXPECT_FALSE(ParseSentence("!AIVDM,1,1,,B,xyz,0").ok());  // no checksum
  EXPECT_FALSE(ParseSentence("!AIVDM,1,1,B,xyz,0*23").ok());  // 6 fields
}

TEST(NmeaTest, ParseRejectsInconsistentFragments) {
  NmeaSentence s;
  s.fragment_count = 1;
  s.fragment_index = 2;  // index > count
  s.payload = "177KQJ5000G?tO`K>RA1wUbN0TKH";
  EXPECT_FALSE(ParseSentence(FormatSentence(s)).ok());
}

TEST(NmeaTest, ParseToleratesTrailingWhitespace) {
  NmeaSentence s;
  s.payload = "177KQJ5000G?tO`K>RA1wUbN0TKH";
  EXPECT_TRUE(ParseSentence(FormatSentence(s) + "\r\n").ok());
}

TEST(FragmentAssemblerTest, SingleFragmentPassesThrough) {
  FragmentAssembler fa;
  NmeaSentence s;
  s.payload = "ABC";
  s.fill_bits = 2;
  const auto r = fa.Add(s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().payload, "ABC");
  EXPECT_EQ(r.value().fill_bits, 2);
  EXPECT_EQ(fa.pending_groups(), 0u);
}

TEST(FragmentAssemblerTest, TwoFragmentReassembly) {
  FragmentAssembler fa;
  NmeaSentence f1;
  f1.fragment_count = 2;
  f1.fragment_index = 1;
  f1.sequence_id = 5;
  f1.payload = "AAAA";
  NmeaSentence f2 = f1;
  f2.fragment_index = 2;
  f2.payload = "BBB";
  f2.fill_bits = 4;
  const auto r1 = fa.Add(f1);
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fa.pending_groups(), 1u);
  const auto r2 = fa.Add(f2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().payload, "AAAABBB");
  EXPECT_EQ(r2.value().fill_bits, 4);
  EXPECT_EQ(fa.pending_groups(), 0u);
}

TEST(FragmentAssemblerTest, DuplicateFragmentRejected) {
  FragmentAssembler fa;
  NmeaSentence f;
  f.fragment_count = 2;
  f.fragment_index = 2;
  f.sequence_id = 1;
  f.payload = "X";
  EXPECT_FALSE(fa.Add(f).ok());
  const auto dup = fa.Add(f);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kCorruption);
}

TEST(FragmentAssemblerTest, ReusedSequenceIdRestartsGroup) {
  FragmentAssembler fa;
  NmeaSentence f1;
  f1.fragment_count = 2;
  f1.fragment_index = 1;
  f1.sequence_id = 9;
  f1.payload = "OLD1";
  EXPECT_FALSE(fa.Add(f1).ok());
  // A fresh first fragment with the same sequence id: the stale group is
  // dropped, not merged.
  NmeaSentence g1 = f1;
  g1.payload = "NEW1";
  EXPECT_FALSE(fa.Add(g1).ok());
  NmeaSentence g2 = f1;
  g2.fragment_index = 2;
  g2.payload = "NEW2";
  const auto done = fa.Add(g2);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().payload, "NEW1NEW2");
}

TEST(FragmentAssemblerTest, OutOfOrderFragmentsReassemble) {
  // AIS delivery reorders fragments; a first fragment arriving after a
  // later one must join the existing group, not restart it.
  FragmentAssembler fa;
  NmeaSentence f2;
  f2.fragment_count = 2;
  f2.fragment_index = 2;
  f2.sequence_id = 7;
  f2.payload = "BBB";
  f2.fill_bits = 4;
  NmeaSentence f1 = f2;
  f1.fragment_index = 1;
  f1.payload = "AAAA";
  f1.fill_bits = 0;
  const auto r2 = fa.Add(f2);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kNotFound);
  const auto r1 = fa.Add(f1);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(r1.value().payload, "AAAABBB");
  EXPECT_EQ(r1.value().fill_bits, 4);  // fill bits come from the last fragment
  EXPECT_EQ(fa.pending_groups(), 0u);
}

TEST(FragmentAssemblerTest, ThreeFragmentsFullyReversed) {
  FragmentAssembler fa;
  NmeaSentence f;
  f.fragment_count = 3;
  f.sequence_id = 2;
  for (const int idx : {3, 2, 1}) {
    f.fragment_index = idx;
    f.payload = std::string(1, static_cast<char>('0' + idx));
    const auto r = fa.Add(f);
    if (idx == 1) {
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r.value().payload, "123");
    } else {
      EXPECT_FALSE(r.ok());
    }
  }
}

TEST(FragmentAssemblerTest, IncompleteGroupEvictedByAge) {
  // A lost fragment must not pin its group in memory forever.
  FragmentAssembler::Options opts;
  opts.max_group_age_adds = 4;
  FragmentAssembler fa(opts);
  NmeaSentence orphan;
  orphan.fragment_count = 2;
  orphan.fragment_index = 1;
  orphan.sequence_id = 3;
  orphan.payload = "LOST";
  EXPECT_FALSE(fa.Add(orphan).ok());
  EXPECT_EQ(fa.pending_groups(), 1u);
  NmeaSentence single;  // unrelated single-fragment traffic ages the group
  single.payload = "X";
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fa.Add(single).ok());
  EXPECT_EQ(fa.pending_groups(), 0u);
  EXPECT_EQ(fa.evicted_groups(), 1u);
}

TEST(FragmentAssemblerTest, PendingGroupCapEvictsOldest) {
  FragmentAssembler::Options opts;
  opts.max_pending_groups = 2;
  FragmentAssembler fa(opts);
  NmeaSentence f;
  f.fragment_count = 2;
  f.fragment_index = 1;
  f.payload = "P";
  for (int seq = 0; seq < 3; ++seq) {
    f.sequence_id = seq;
    EXPECT_FALSE(fa.Add(f).ok());
  }
  EXPECT_EQ(fa.pending_groups(), 2u);
  EXPECT_EQ(fa.evicted_groups(), 1u);
  // The oldest group (seq 0) was evicted; completing it now fails as a
  // duplicate-free fresh group rather than assembling "P"+"Q".
  f.sequence_id = 1;  // still pending: completes normally
  f.fragment_index = 2;
  f.payload = "Q";
  const auto done = fa.Add(f);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done.value().payload, "PQ");
}

TEST(FragmentAssemblerTest, CompletionIsNotDisturbedByEviction) {
  // Groups that keep receiving fragments are never evicted, regardless of
  // how much unrelated traffic interleaves.
  FragmentAssembler::Options opts;
  opts.max_group_age_adds = 3;
  FragmentAssembler fa(opts);
  NmeaSentence f1;
  f1.fragment_count = 2;
  f1.fragment_index = 1;
  f1.sequence_id = 8;
  f1.payload = "HEAD";
  EXPECT_FALSE(fa.Add(f1).ok());
  NmeaSentence single;
  single.payload = "Y";
  for (int i = 0; i < 2; ++i) EXPECT_TRUE(fa.Add(single).ok());
  NmeaSentence f2 = f1;
  f2.fragment_index = 2;
  f2.payload = "TAIL";
  const auto done = fa.Add(f2);
  ASSERT_TRUE(done.ok()) << done.status();
  EXPECT_EQ(done.value().payload, "HEADTAIL");
  EXPECT_EQ(fa.evicted_groups(), 0u);
}

PositionReport MakeReport(MessageType type) {
  PositionReport r;
  r.type = type;
  r.mmsi = 237001234;
  r.nav_status = NavStatus::kUnderWayUsingEngine;
  r.lon_deg = 24.12345;
  r.lat_deg = 37.54321;
  r.sog_knots = 12.3;
  r.cog_deg = 231.4;
  r.true_heading_deg = 230;
  r.utc_second = 42;
  r.position_accuracy_high = true;
  return r;
}

class MessageRoundTripTest : public ::testing::TestWithParam<MessageType> {};

TEST_P(MessageRoundTripTest, EncodeDecodePreservesFields) {
  PositionReport in = MakeReport(GetParam());
  if (GetParam() == MessageType::kExtendedClassB) {
    in.ship_name = "WIND DANCER";
    in.ship_type = 37;
  }
  const auto bits = EncodePositionReport(in);
  const size_t expected_bits =
      GetParam() == MessageType::kExtendedClassB ? 312u : 168u;
  EXPECT_EQ(bits.size(), expected_bits);
  const auto out = DecodePositionReport(bits);
  ASSERT_TRUE(out.ok()) << out.status();
  const PositionReport& r = out.value();
  EXPECT_EQ(r.type, in.type);
  EXPECT_EQ(r.mmsi, in.mmsi);
  // Coordinates quantize to 1/10000 arc-minute (~0.18 m).
  EXPECT_NEAR(r.lon_deg, in.lon_deg, 1.0 / 600000.0);
  EXPECT_NEAR(r.lat_deg, in.lat_deg, 1.0 / 600000.0);
  ASSERT_TRUE(r.sog_knots.has_value());
  EXPECT_NEAR(*r.sog_knots, 12.3, 0.05);
  ASSERT_TRUE(r.cog_deg.has_value());
  EXPECT_NEAR(*r.cog_deg, 231.4, 0.05);
  ASSERT_TRUE(r.true_heading_deg.has_value());
  EXPECT_EQ(*r.true_heading_deg, 230);
  EXPECT_EQ(r.utc_second, 42);
  EXPECT_TRUE(r.position_accuracy_high);
  if (GetParam() == MessageType::kExtendedClassB) {
    EXPECT_EQ(r.ship_name, "WIND DANCER");
    EXPECT_EQ(r.ship_type, 37);
  }
  if (GetParam() == MessageType::kPositionReportScheduled) {
    EXPECT_EQ(r.nav_status, NavStatus::kUnderWayUsingEngine);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, MessageRoundTripTest,
                         ::testing::Values(
                             MessageType::kPositionReportScheduled,
                             MessageType::kPositionReportAssigned,
                             MessageType::kPositionReportResponse,
                             MessageType::kStandardClassB,
                             MessageType::kExtendedClassB));

TEST(MessageTest, NotAvailableSentinels) {
  PositionReport in = MakeReport(MessageType::kPositionReportScheduled);
  in.sog_knots = std::nullopt;
  in.cog_deg = std::nullopt;
  in.true_heading_deg = std::nullopt;
  const auto out = DecodePositionReport(EncodePositionReport(in));
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().sog_knots.has_value());
  EXPECT_FALSE(out.value().cog_deg.has_value());
  EXPECT_FALSE(out.value().true_heading_deg.has_value());
}

TEST(MessageTest, NegativeCoordinatesRoundTrip) {
  PositionReport in = MakeReport(MessageType::kPositionReportScheduled);
  in.lon_deg = -70.25;
  in.lat_deg = -33.125;
  const auto out = DecodePositionReport(EncodePositionReport(in));
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out.value().lon_deg, -70.25, 1e-5);
  EXPECT_NEAR(out.value().lat_deg, -33.125, 1e-5);
}

TEST(MessageTest, DecodeRejectsTruncatedPayload) {
  auto bits = EncodePositionReport(
      MakeReport(MessageType::kPositionReportScheduled));
  bits.resize(100);
  const auto out = DecodePositionReport(bits);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(MessageTest, DecodeRejectsUnsupportedType) {
  BitWriter w;
  w.WriteUnsigned(5, 6);  // type 5: static voyage data, unsupported
  // Pad to a plausible body length; fields are at most 64 bits wide.
  for (int padded = 0; padded < 162; padded += 54) w.WriteUnsigned(0, 54);
  const auto out = DecodePositionReport(w.bits());
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnimplemented);
}

TEST(MessageTest, SupportedTypePredicate) {
  for (const int t : {1, 2, 3, 18, 19}) EXPECT_TRUE(IsSupportedType(t));
  for (const int t : {0, 4, 5, 17, 20, 24, 27}) {
    EXPECT_FALSE(IsSupportedType(t));
  }
}

TEST(EncodeToNmeaTest, ClassAFitsOneSentence) {
  const auto lines =
      EncodeToNmea(MakeReport(MessageType::kPositionReportScheduled));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(ParseSentence(lines[0]).ok());
}

TEST(EncodeToNmeaTest, Type19SpansTwoFragments) {
  PositionReport r = MakeReport(MessageType::kExtendedClassB);
  r.ship_name = "LONG NAME VESSEL";
  const auto lines = EncodeToNmea(r, 'B', 4);
  ASSERT_EQ(lines.size(), 2u);
  const auto s1 = ParseSentence(lines[0]);
  const auto s2 = ParseSentence(lines[1]);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(s1.value().fragment_count, 2);
  EXPECT_EQ(s1.value().sequence_id, 4);
  EXPECT_EQ(s2.value().fragment_index, 2);
}

TEST(ScannerTest, AcceptsValidClassA) {
  DataScanner scanner;
  const auto lines =
      EncodeToNmea(MakeReport(MessageType::kPositionReportScheduled));
  const auto r = scanner.FeedLine(lines[0], 1234);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().mmsi, 237001234u);
  EXPECT_EQ(r.value().tau, 1234);
  EXPECT_NEAR(r.value().pos.lon, 24.12345, 1e-5);
  EXPECT_EQ(scanner.stats().accepted, 1u);
}

TEST(ScannerTest, ReassemblesType19) {
  DataScanner scanner;
  PositionReport rep = MakeReport(MessageType::kExtendedClassB);
  rep.ship_name = "TWO PART";
  const auto lines = EncodeToNmea(rep);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_FALSE(scanner.FeedLine(lines[0], 10).ok());
  const auto r = scanner.FeedLine(lines[1], 11);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(scanner.last_report().ship_name, "TWO PART");
  EXPECT_EQ(scanner.stats().fragment_pending, 1u);
  EXPECT_EQ(scanner.stats().accepted, 1u);
}

TEST(ScannerTest, DiscardsBadChecksum) {
  DataScanner scanner;
  auto line = EncodeToNmea(MakeReport(MessageType::kPositionReportScheduled))
                  .front();
  line[15] ^= 0x1;  // corrupt one payload character
  EXPECT_FALSE(scanner.FeedLine(line, 5).ok());
  EXPECT_EQ(scanner.stats().framing_errors, 1u);
  EXPECT_EQ(scanner.stats().accepted, 0u);
}

TEST(ScannerTest, DiscardsSentinelPosition) {
  DataScanner scanner;
  PositionReport r = MakeReport(MessageType::kPositionReportScheduled);
  r.lon_deg = 181.0;  // "not available" sentinel
  const auto lines = EncodeToNmea(r);
  EXPECT_FALSE(scanner.FeedLine(lines[0], 5).ok());
  EXPECT_EQ(scanner.stats().invalid_position, 1u);
}

TEST(ScannerTest, TaggedFormat) {
  DataScanner scanner;
  const auto line =
      EncodeToNmea(MakeReport(MessageType::kPositionReportScheduled)).front();
  const auto r = scanner.FeedTagged("98765\t" + line);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tau, 98765);
  EXPECT_FALSE(scanner.FeedTagged("notanumber\t" + line).ok());
  EXPECT_FALSE(scanner.FeedTagged(line).ok());  // no tag
}

TEST(ScannerTest, ScanTaggedLogFiltersNoise) {
  const auto line =
      EncodeToNmea(MakeReport(MessageType::kPositionReportScheduled)).front();
  std::string log;
  log += "100\t" + line + "\n";
  log += "garbage line\n";
  log += "\n";
  log += "200\t" + line + "\n";
  DataScanner scanner;
  const auto tuples = scanner.ScanTaggedLog(log);
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0].tau, 100);
  EXPECT_EQ(tuples[1].tau, 200);
}

// --- Regression tests for defects surfaced by the fuzzers / UBSan ---------

TEST(NmeaRegressionTest, HugeFragmentCountIsRejected) {
  // A hostile fragment count used to pre-size the FragmentAssembler's
  // fragment table to match (memory blow-up); counts beyond the one-digit
  // NMEA field are now rejected at parse time.
  const std::string body = "AIVDM,999999,1,3,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0";
  const std::string line = "!" + body + "*" + NmeaChecksum(body);
  const auto parsed = ParseSentence(line);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);

  FragmentAssembler assembler;
  EXPECT_EQ(assembler.pending_groups(), 0u);
}

TEST(NmeaRegressionTest, NumericFieldOverflowFallsBackInsteadOfUB) {
  // Numeric fields longer than int used to accumulate into signed overflow
  // (undefined behavior); they now fall back to the field's invalid value
  // and the sentence is rejected by validation.
  const std::string body =
      "AIVDM,99999999999999999999,1,3,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0";
  const std::string line = "!" + body + "*" + NmeaChecksum(body);
  EXPECT_FALSE(ParseSentence(line).ok());
}

TEST(NmeaRegressionTest, MaxFragmentsBoundaryStillAssembles) {
  // The cap must not break the largest legal group (9 fragments).
  FragmentAssembler assembler;
  Result<FragmentAssembler::Assembled> last =
      Status::NotFound("no fragment yet");
  for (int i = 1; i <= kMaxFragments; ++i) {
    NmeaSentence s;
    s.fragment_count = kMaxFragments;
    s.fragment_index = i;
    s.sequence_id = 5;
    s.payload = std::string(4, static_cast<char>('0' + i));
    s.fill_bits = i == kMaxFragments ? 2 : 0;
    last = assembler.Add(s);
    if (i < kMaxFragments) {
      EXPECT_FALSE(last.ok());
    }
  }
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value().payload.size(), 4u * kMaxFragments);
  EXPECT_EQ(last.value().fill_bits, 2);
}

TEST(ScannerRegressionTest, OverlongTimestampTagIsRejectedNotOverflowed) {
  // 25 digits exceed int64; accumulation used to be UB. The line must be
  // cleanly rejected and counted as a framing error.
  DataScanner scanner;
  const auto r = scanner.FeedTagged(
      "9999999999999999999999999\t!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*5C");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(scanner.stats().framing_errors, 1u);

  // The largest representable tag still parses.
  DataScanner ok_scanner;
  const auto max_tag = std::to_string(std::numeric_limits<int64_t>::max());
  const auto r2 = ok_scanner.FeedTagged(max_tag + "\tgarbage");
  // Rejected for the sentence, not for the timestamp: no framing error on
  // the tag itself means the number parsed.
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().message(), "sentence does not start with '!'");
}

TEST(SixbitRegressionTest, TruncatedMultipartPayloadSetsOverflowNotCrash) {
  // A type 19 payload cut mid-field (as when the second fragment of a group
  // is lost and a stale group is mis-assembled) must surface as Corruption.
  PositionReport r;
  r.type = MessageType::kExtendedClassB;
  r.mmsi = 237001000;
  r.lon_deg = 23.6;
  r.lat_deg = 37.9;
  std::vector<uint8_t> bits = EncodePositionReport(r);
  bits.resize(bits.size() / 2);
  const auto decoded = DecodePositionReport(bits);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace maritime::ais
