#ifndef MARITIME_EXPORT_GEOJSON_H_
#define MARITIME_EXPORT_GEOJSON_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geo/polygon.h"
#include "stream/position.h"
#include "tracker/critical_point.h"

namespace maritime::exporter {

/// GeoJSON FeatureCollection builder — the web-map counterpart of the KML
/// exporter (modern chart plotters consume GeoJSON directly).
class GeoJsonWriter {
 public:
  GeoJsonWriter() = default;

  /// Adds a LineString feature with a "name" property.
  void AddTrajectory(const std::string& name,
                     const std::vector<geo::GeoPoint>& points);

  /// Adds one Point feature per critical point, with mmsi / tau / flags /
  /// speed properties.
  void AddCriticalPoints(const std::vector<tracker::CriticalPoint>& points);

  /// Adds a Polygon feature (ring closed automatically) with name/kind
  /// properties.
  void AddPolygon(const std::string& name, const std::string& kind,
                  const std::vector<geo::GeoPoint>& ring);

  /// The complete FeatureCollection document.
  std::string Finish() const;

  Status WriteFile(const std::string& path) const;

  size_t feature_count() const { return features_.size(); }

 private:
  std::vector<std::string> features_;
};

}  // namespace maritime::exporter

#endif  // MARITIME_EXPORT_GEOJSON_H_
