// Protected-area monitor: paper Scenario 3 (illegalShipping).
//
// A tanker approaches the National-Marine-Park-like protected area, switches
// its AIS transponder off just outside, crosses the park dark, and resumes
// reporting on the far side. The trajectory detection component reports the
// communication gap at its starting point; RTEC rule (5) raises
// illegalShipping because the gap started close to a protected area.
//
// The example also exports the vessel's compressed trajectory, its critical
// points and the park polygon as KML for map display.

#include <cstdio>

#include "export/geojson.h"
#include "export/kml.h"
#include "maritime/alerts.h"
#include "maritime/pipeline.h"
#include "sim/scenarios.h"
#include "sim/world.h"
#include "stream/replayer.h"

int main() {
  using namespace maritime;

  sim::World world = sim::BuildWorld(/*seed=*/13);
  const surveillance::AreaInfo* park = nullptr;
  for (const auto& a : world.knowledge.areas()) {
    if (a.kind == surveillance::AreaKind::kProtected) {
      park = &a;
      break;
    }
  }
  if (park == nullptr) {
    std::fprintf(stderr, "no protected area in world\n");
    return 1;
  }
  std::printf("monitoring %s (area %d), close threshold %.0f m\n",
              park->name.c_str(), park->id,
              world.knowledge.close_threshold_m());

  // Static vessel data for the suspect.
  surveillance::VesselInfo tanker;
  tanker.mmsi = 237099900;
  tanker.name = "MT NIGHTRUNNER";
  tanker.type = surveillance::VesselType::kTanker;
  tanker.draft_m = 11.5;
  world.knowledge.AddVessel(tanker);

  // Script the intrusion: approach from the west, go dark just after
  // entering the park, cross it in silence (~65 min at 12 kn), resume well
  // past the far side.
  const geo::GeoPoint center = park->polygon.VertexCentroid();
  const geo::GeoPoint start = geo::DestinationPoint(center, 270.0, 40000.0);
  sim::TraceBuilder trace(tanker.mmsi, start, 0);
  const double approach_m = 40000.0 - 600.0;
  trace.Cruise(90.0, 12.0,
               static_cast<Duration>(approach_m / (12.0 * geo::kKnotsToMps)),
               30);
  const Timestamp dark_at = trace.now();
  trace.Silence(65 * kMinute);
  trace.Cruise(90.0, 12.0, kHour, 30);
  std::printf("scripted: transponder off at %s for 65 minutes\n",
              FormatTimestamp(dark_at).c_str());

  // Run the pipeline.
  surveillance::PipelineConfig config;
  config.window = stream::WindowSpec{kHour, 5 * kMinute};
  surveillance::SurveillancePipeline pipeline(&world.knowledge, config);
  stream::StreamReplayer replayer(std::move(trace).Build());

  auto& recognizer = pipeline.recognizer().partition(0);
  // The AlertManager deduplicates across overlapping windows: the operator
  // sees each situation once, not once per window slide.
  surveillance::AlertManager alert_manager(&recognizer.engine());
  int alerts = 0;
  pipeline.Run(replayer, [&](const surveillance::SlideReport& report) {
    for (const auto& r : report.recognition) {
      for (const auto& alert : alert_manager.Process(r)) {
        ++alerts;
        std::printf("  [Q=%s] %s\n",
                    FormatTimestamp(report.query_time).c_str(),
                    alert.text.c_str());
      }
    }
  });
  std::printf("alerts raised: %d\n", alerts);

  // Export the evidence for map display.
  exporter::KmlWriter kml;
  kml.AddPolygon(park->name, park->polygon.vertices());
  std::vector<geo::GeoPoint> path;
  for (const auto& cp : pipeline.critical_points()) path.push_back(cp.pos);
  kml.AddTrajectory(tanker.name, path);
  kml.AddCriticalPoints("critical points", pipeline.critical_points());
  const std::string out = "protected_area_monitor.kml";
  if (kml.WriteFile(out).ok()) {
    std::printf("wrote %s (%zu critical points)\n", out.c_str(),
                pipeline.critical_points().size());
  }
  exporter::GeoJsonWriter geojson;
  geojson.AddPolygon(park->name, "protected", park->polygon.vertices());
  geojson.AddTrajectory(tanker.name, path);
  geojson.AddCriticalPoints(pipeline.critical_points());
  if (geojson.WriteFile("protected_area_monitor.geojson").ok()) {
    std::printf("wrote protected_area_monitor.geojson (%zu features)\n",
                geojson.feature_count());
  }
  return alerts > 0 ? 0 : 2;
}
