#include "rtec/interval.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace maritime::rtec {
namespace {

std::atomic<uint64_t> g_normalize_fast{0};
std::atomic<uint64_t> g_normalize_slow{0};

/// Shared sort+coalesce over any vector<Interval, Alloc>.
template <typename Vec>
void NormalizeImpl(Vec* list) {
  auto& v = *list;
  // Fast path: one linear scan accepts input that is already sorted, empty-
  // free, disjoint and non-adjacent — exactly what the episode sweeps emit
  // when regenerating a suffix in time order. This skips the O(n log n) sort
  // and, more importantly, the branchy comparator on the hot path.
  bool normalized = true;
  Timestamp prev_till = kInvalidTimestamp;
  for (const Interval& i : v) {
    if (i.since >= i.till ||
        (prev_till != kInvalidTimestamp && i.since <= prev_till)) {
      normalized = false;
      break;
    }
    prev_till = i.till;
  }
  if (normalized) {
    g_normalize_fast.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  g_normalize_slow.fetch_add(1, std::memory_order_relaxed);
  v.erase(std::remove_if(v.begin(), v.end(),
                         [](const Interval& i) { return !i.NonEmpty(); }),
          v.end());
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    if (a.since != b.since) return a.since < b.since;
    return a.till < b.till;
  });
  size_t out = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (out > 0 && v[i].since <= v[out - 1].till) {
      // Overlapping or adjacent ((a,b] followed by (b,c]): coalesce.
      v[out - 1].till = std::max(v[out - 1].till, v[i].till);
    } else {
      v[out++] = v[i];
    }
  }
  v.resize(out);
  MARITIME_DCHECK(IsNormalized(v));
}

}  // namespace

void NormalizeIntervals(IntervalList* list) { NormalizeImpl(list); }
void NormalizeIntervals(IntervalVec* list) { NormalizeImpl(list); }

NormalizeStats GetNormalizeStats() {
  return NormalizeStats{g_normalize_fast.load(std::memory_order_relaxed),
                        g_normalize_slow.load(std::memory_order_relaxed)};
}

bool IsNormalized(IntervalSpan list) {
  for (size_t i = 0; i < list.size(); ++i) {
    if (!list[i].NonEmpty()) return false;
    if (i > 0 && list[i].since <= list[i - 1].till) return false;
  }
  return true;
}

bool HoldsAt(IntervalSpan list, Timestamp t) {
  // Last interval with since < t.
  const auto it = std::partition_point(
      list.begin(), list.end(),
      [t](const Interval& i) { return i.since < t; });
  if (it == list.begin()) return false;
  return (it - 1)->till >= t;
}

bool HoldsRightOf(IntervalSpan list, Timestamp t) {
  const auto it = std::partition_point(
      list.begin(), list.end(),
      [t](const Interval& i) { return i.since <= t; });
  if (it == list.begin()) return false;
  return (it - 1)->till > t;
}

IntervalList UnionAll(const std::vector<IntervalList>& lists) {
  IntervalList out;
  for (const auto& l : lists) out.insert(out.end(), l.begin(), l.end());
  NormalizeIntervals(&out);
  return out;
}

IntervalList IntersectAll(const std::vector<IntervalList>& lists) {
  if (lists.empty()) return {};
  IntervalList acc = lists[0];
  NormalizeIntervals(&acc);
  for (size_t k = 1; k < lists.size(); ++k) {
    IntervalList rhs = lists[k];
    NormalizeIntervals(&rhs);
    IntervalList next;
    size_t i = 0, j = 0;
    while (i < acc.size() && j < rhs.size()) {
      const Timestamp lo = std::max(acc[i].since, rhs[j].since);
      const Timestamp hi = std::min(acc[i].till, rhs[j].till);
      if (lo < hi) next.push_back(Interval{lo, hi});
      if (acc[i].till < rhs[j].till) {
        ++i;
      } else {
        ++j;
      }
    }
    acc = std::move(next);
    if (acc.empty()) break;
  }
  MARITIME_DCHECK(IsNormalized(acc));
  return acc;
}

IntervalList RelativeComplementAll(const IntervalList& base,
                                   const std::vector<IntervalList>& subtract) {
  IntervalList cut = UnionAll(subtract);
  IntervalList norm_base = base;
  NormalizeIntervals(&norm_base);
  IntervalList out;
  size_t j = 0;
  for (const Interval& b : norm_base) {
    Timestamp cursor = b.since;
    while (j < cut.size() && cut[j].till <= cursor) ++j;
    size_t k = j;
    while (k < cut.size() && cut[k].since < b.till) {
      if (cut[k].since > cursor) {
        out.push_back(Interval{cursor, cut[k].since});
      }
      cursor = std::max(cursor, cut[k].till);
      if (cursor >= b.till) break;
      ++k;
    }
    if (cursor < b.till) out.push_back(Interval{cursor, b.till});
  }
  NormalizeIntervals(&out);
  return out;
}

IntervalList ClipToWindow(const IntervalList& list, Timestamp lo,
                          Timestamp hi) {
  IntervalList out;
  for (const Interval& i : list) {
    const Interval clipped{std::max(i.since, lo), std::min(i.till, hi)};
    if (clipped.NonEmpty()) out.push_back(clipped);
  }
  NormalizeIntervals(&out);
  return out;
}

// --- flat interval algebra ---------------------------------------------------

void UnionInto(IntervalSpan a, IntervalSpan b, IntervalVec* out) {
  MARITIME_DCHECK(IsNormalized(a) && IsNormalized(b));
  out->clear();
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    // Take the sweep-wise next interval from whichever input starts first.
    const bool from_a =
        j >= b.size() || (i < a.size() && a[i].since <= b[j].since);
    const Interval& next = from_a ? a[i++] : b[j++];
    if (!out->empty() && next.since <= out->back().till) {
      if (next.till > out->back().till) out->back().till = next.till;
    } else {
      out->push_back(next);
    }
  }
  MARITIME_DCHECK(IsNormalized(*out));
}

void IntersectInto(IntervalSpan a, IntervalSpan b, IntervalVec* out) {
  MARITIME_DCHECK(IsNormalized(a) && IsNormalized(b));
  out->clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Timestamp lo = std::max(a[i].since, b[j].since);
    const Timestamp hi = std::min(a[i].till, b[j].till);
    if (lo < hi) out->push_back(Interval{lo, hi});
    if (a[i].till < b[j].till) {
      ++i;
    } else {
      ++j;
    }
  }
  MARITIME_DCHECK(IsNormalized(*out));
}

void ComplementInto(IntervalSpan base, IntervalSpan cut, IntervalVec* out) {
  MARITIME_DCHECK(IsNormalized(base) && IsNormalized(cut));
  out->clear();
  size_t j = 0;
  for (const Interval& b : base) {
    Timestamp cursor = b.since;
    while (j < cut.size() && cut[j].till <= cursor) ++j;
    size_t k = j;
    while (k < cut.size() && cut[k].since < b.till) {
      if (cut[k].since > cursor) {
        out->push_back(Interval{cursor, cut[k].since});
      }
      if (cut[k].till > cursor) cursor = cut[k].till;
      if (cursor >= b.till) break;
      ++k;
    }
    if (cursor < b.till) out->push_back(Interval{cursor, b.till});
  }
  MARITIME_DCHECK(IsNormalized(*out));
}

void ClipToWindowInto(IntervalSpan list, Timestamp lo, Timestamp hi,
                      IntervalVec* out) {
  out->clear();
  for (const Interval& i : list) {
    const Interval clipped{std::max(i.since, lo), std::min(i.till, hi)};
    if (clipped.NonEmpty()) out->push_back(clipped);
  }
  // Clipping a normalized input can collapse a gap but never reorders, so a
  // single coalesce pass keeps the invariant without sorting.
  size_t w = 0;
  for (size_t r = 0; r < out->size(); ++r) {
    if (w > 0 && (*out)[r].since <= (*out)[w - 1].till) {
      if ((*out)[r].till > (*out)[w - 1].till) {
        (*out)[w - 1].till = (*out)[r].till;
      }
    } else {
      (*out)[w++] = (*out)[r];
    }
  }
  out->resize(w);
  MARITIME_DCHECK(IsNormalized(*out));
}

Duration TotalLength(IntervalSpan list) {
  Duration total = 0;
  for (const Interval& i : list) total += i.Length();
  return total;
}

}  // namespace maritime::rtec
