
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mod/analytics.cc" "src/mod/CMakeFiles/maritime_mod.dir/analytics.cc.o" "gcc" "src/mod/CMakeFiles/maritime_mod.dir/analytics.cc.o.d"
  "/root/repo/src/mod/clustering.cc" "src/mod/CMakeFiles/maritime_mod.dir/clustering.cc.o" "gcc" "src/mod/CMakeFiles/maritime_mod.dir/clustering.cc.o.d"
  "/root/repo/src/mod/hermes.cc" "src/mod/CMakeFiles/maritime_mod.dir/hermes.cc.o" "gcc" "src/mod/CMakeFiles/maritime_mod.dir/hermes.cc.o.d"
  "/root/repo/src/mod/store.cc" "src/mod/CMakeFiles/maritime_mod.dir/store.cc.o" "gcc" "src/mod/CMakeFiles/maritime_mod.dir/store.cc.o.d"
  "/root/repo/src/mod/trips.cc" "src/mod/CMakeFiles/maritime_mod.dir/trips.cc.o" "gcc" "src/mod/CMakeFiles/maritime_mod.dir/trips.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/maritime_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/maritime_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/maritime_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/tracker/CMakeFiles/maritime_tracker.dir/DependInfo.cmake"
  "/root/repo/build/src/maritime/CMakeFiles/maritime_surveillance.dir/DependInfo.cmake"
  "/root/repo/build/src/rtec/CMakeFiles/maritime_rtec.dir/DependInfo.cmake"
  "/root/repo/build/src/ais/CMakeFiles/maritime_ais.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
