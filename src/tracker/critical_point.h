#ifndef MARITIME_TRACKER_CRITICAL_POINT_H_
#define MARITIME_TRACKER_CRITICAL_POINT_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "common/time.h"
#include "geo/geo_point.h"
#include "stream/position.h"

namespace maritime::tracker {

/// Annotations attached to a critical point. A single point may carry
/// several (e.g. a sharp turn that is also a speed change), which is why
/// these are flags rather than an enum.
enum CriticalFlag : uint32_t {
  kFirst = 1u << 0,        ///< First position ever seen for the vessel.
  kGapStart = 1u << 1,     ///< Last position before a communication gap.
  kGapEnd = 1u << 2,       ///< First position after a communication gap.
  kTurn = 1u << 3,         ///< Instantaneous heading change > Δθ.
  kSmoothTurn = 1u << 4,   ///< Cumulative heading change > Δθ.
  kSpeedChange = 1u << 5,  ///< Speed deviated by more than α from previous.
  kStopStart = 1u << 6,    ///< Long-term stop began.
  kStopEnd = 1u << 7,      ///< Long-term stop ended (centroid + duration).
  kSlowMotionStart = 1u << 8,  ///< Slow-motion episode began.
  kSlowMotionEnd = 1u << 9,    ///< Slow-motion episode ended (median point).
  kLast = 1u << 10,            ///< Final position at end of stream (emitted
                               ///< by MobilityTracker::Finish so trajectory
                               ///< reconstruction has a closing anchor).
  kSlowMotionWaypoint = 1u << 11,  ///< Shape waypoint inside a slow-motion
                                   ///< episode, emitted whenever the vessel
                                   ///< has drifted far from the previous
                                   ///< waypoint; keeps the reconstructed
                                   ///< meander faithful without per-sample
                                   ///< turn chatter.
};

/// Human-readable flag list, e.g. "turn|speed_change".
std::string CriticalFlagsToString(uint32_t flags);

/// A "critical point": a salient motion feature retained by the online
/// summarization (paper Section 3). The sequence of critical points per
/// vessel is a concise yet reliable synopsis of its trajectory.
struct CriticalPoint {
  stream::Mmsi mmsi = 0;
  geo::GeoPoint pos;           ///< Representative position (sample, centroid
                               ///< for stops, or median for slow motion).
  Timestamp tau = 0;           ///< Event time.
  uint32_t flags = 0;          ///< OR of CriticalFlag values.
  double speed_knots = 0.0;    ///< Instantaneous speed at emission.
  double heading_deg = 0.0;    ///< Instantaneous heading at emission.
  Duration duration = 0;       ///< For kStopEnd / kSlowMotionEnd / kGapEnd:
                               ///< episode length in seconds.

  bool Has(CriticalFlag f) const { return (flags & f) != 0; }
};

inline std::ostream& operator<<(std::ostream& os, const CriticalPoint& c) {
  return os << "{mmsi=" << c.mmsi << " " << c.pos << " tau=" << c.tau << " ["
            << CriticalFlagsToString(c.flags) << "]}";
}

}  // namespace maritime::tracker

#endif  // MARITIME_TRACKER_CRITICAL_POINT_H_
