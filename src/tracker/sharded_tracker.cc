#include "tracker/sharded_tracker.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/check.h"

namespace maritime::tracker {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Stream order over coalesced critical points. Keys are unique across the
/// merged outputs (one vessel lives in one shard; each shard's Compress
/// leaves at most one point per (mmsi, tau)), so this comparator induces a
/// single deterministic sequence at any shard count.
bool StreamOrder(const CriticalPoint& a, const CriticalPoint& b) {
  if (a.tau != b.tau) return a.tau < b.tau;
  return a.mmsi < b.mmsi;
}

/// The ProcessSlide contract: merged output strictly increasing by
/// (tau, mmsi) — duplicate keys would mean a vessel leaked into two shards
/// or a shard emitted uncoalesced points.
bool StrictlyStreamOrdered(const std::vector<CriticalPoint>& points) {
  for (size_t i = 1; i < points.size(); ++i) {
    if (!StreamOrder(points[i - 1], points[i])) return false;
  }
  return true;
}

}  // namespace

ShardedMobilityTracker::ShardedMobilityTracker(TrackerParams params,
                                               int shards,
                                               common::ThreadPool* pool)
    : pool_(pool) {
  assert(shards >= 1);
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) shards_.emplace_back(params);
}

std::vector<CriticalPoint> ShardedMobilityTracker::ProcessSlide(
    std::span<const stream::PositionTuple> batch, Timestamp query_time,
    std::vector<ShardSlideStats>* per_shard) {
  for (const auto& tuple : batch) Ingest(tuple);
  return ProcessSlide(query_time, per_shard);
}

std::vector<CriticalPoint> ShardedMobilityTracker::ProcessSlide(
    Timestamp query_time, std::vector<ShardSlideStats>* per_shard) {
  const size_t n = shards_.size();
  if (per_shard != nullptr) {
    per_shard->assign(n, ShardSlideStats{});
  }
  const auto run_shard = [&](size_t i) {
    Shard& s = shards_[i];
    const double t0 = NowSeconds();
    // Drain this shard's ring inbox on the shard's own task: the scatter
    // happens ring-by-ring in parallel instead of serially on the caller.
    s.ring->DrainInto(&s.inbox);
    std::vector<CriticalPoint> raw;
    for (const auto& tuple : s.inbox) s.tracker.Process(tuple, &raw);
    s.tracker.AdvanceTo(query_time, &raw);
    s.slide_out = s.compressor.Compress(std::move(raw), s.inbox.size());
    const double seconds = NowSeconds() - t0;
    if (per_shard != nullptr) {
      ShardSlideStats& st = (*per_shard)[i];
      st.seconds = seconds;
      st.tuples = s.inbox.size();
      st.critical_points = s.slide_out.size();
    }
    {
      std::lock_guard<std::mutex> lock(totals_mu_);
      totals_.busy_seconds += seconds;
      totals_.tuples += s.inbox.size();
      totals_.critical_points += s.slide_out.size();
    }
    s.inbox.clear();
  };
  if (pool_ != nullptr && n > 1) {
    // Tracker lane: shard tasks prefer the lane's workers (and, when the
    // pool is pinned, the lane's cores), keeping per-shard vessel state
    // resident while the recognizer lane runs a different slide's phase.
    pool_->ParallelFor(common::Lane::kTracker, n, run_shard);
  } else {
    for (size_t i = 0; i < n; ++i) run_shard(i);
  }
  {
    std::lock_guard<std::mutex> lock(totals_mu_);
    ++totals_.slides;
  }

  // Merge barrier: per-shard outputs are already in stream order; a single
  // sort over the concatenation yields the canonical sequence.
  if (n == 1) {
    MARITIME_DCHECK(StrictlyStreamOrdered(shards_[0].slide_out));
    return std::move(shards_[0].slide_out);
  }
  std::vector<CriticalPoint> merged;
  size_t total = 0;
  for (const Shard& s : shards_) total += s.slide_out.size();
  merged.reserve(total);
  for (Shard& s : shards_) {
    merged.insert(merged.end(), s.slide_out.begin(), s.slide_out.end());
    s.slide_out.clear();
  }
  std::sort(merged.begin(), merged.end(), StreamOrder);
  MARITIME_DCHECK(StrictlyStreamOrdered(merged));
  return merged;
}

SlideTotals ShardedMobilityTracker::slide_totals() const {
  std::lock_guard<std::mutex> lock(totals_mu_);
  return totals_;
}

void ShardedMobilityTracker::Process(const stream::PositionTuple& tuple,
                                     std::vector<CriticalPoint>* out) {
  shards_[ShardOf(tuple.mmsi)].tracker.Process(tuple, out);
}

void ShardedMobilityTracker::AdvanceTo(Timestamp now,
                                       std::vector<CriticalPoint>* out) {
  for (Shard& s : shards_) s.tracker.AdvanceTo(now, out);
}

void ShardedMobilityTracker::Finish(std::vector<CriticalPoint>* out) {
  std::vector<CriticalPoint> tail;
  for (Shard& s : shards_) {
    // Tuples ingested after the last slide still count: process them before
    // flushing so end-of-stream never silently drops ring contents.
    s.inbox.clear();
    if (s.ring->DrainInto(&s.inbox) > 0) {
      for (const auto& tuple : s.inbox) s.tracker.Process(tuple, &tail);
      s.inbox.clear();
    }
    s.tracker.Finish(&tail);
  }
  // A vessel's closing points (stop end, last anchor) share its final tau;
  // stable_sort keeps their per-vessel emission order while making the
  // cross-vessel order independent of shard count and map iteration.
  std::stable_sort(tail.begin(), tail.end(), StreamOrder);
  out->insert(out->end(), tail.begin(), tail.end());
}

TrackerStats ShardedMobilityTracker::stats() const {
  TrackerStats total;
  for (const Shard& s : shards_) {
    const TrackerStats& t = s.tracker.stats();
    total.processed += t.processed;
    total.accepted += t.accepted;
    total.stale_discarded += t.stale_discarded;
    total.outliers_discarded += t.outliers_discarded;
    total.outlier_resets += t.outlier_resets;
    total.critical_points += t.critical_points;
  }
  return total;
}

CompressionStats ShardedMobilityTracker::compression_stats() const {
  CompressionStats total;
  for (const Shard& s : shards_) {
    total.raw_positions += s.compressor.stats().raw_positions;
    total.critical_points += s.compressor.stats().critical_points;
  }
  return total;
}

size_t ShardedMobilityTracker::vessel_count() const {
  size_t total = 0;
  for (const Shard& s : shards_) total += s.tracker.vessel_count();
  return total;
}

const VesselState* ShardedMobilityTracker::FindVessel(
    stream::Mmsi mmsi) const {
  return shards_[ShardOf(mmsi)].tracker.FindVessel(mmsi);
}

double ShardedMobilityTracker::OdometerMeters(stream::Mmsi mmsi) const {
  return shards_[ShardOf(mmsi)].tracker.OdometerMeters(mmsi);
}

}  // namespace maritime::tracker
