
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/maritime/CMakeFiles/maritime_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/maritime_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/export/CMakeFiles/maritime_export.dir/DependInfo.cmake"
  "/root/repo/build/src/mod/CMakeFiles/maritime_mod.dir/DependInfo.cmake"
  "/root/repo/build/src/maritime/CMakeFiles/maritime_surveillance.dir/DependInfo.cmake"
  "/root/repo/build/src/rtec/CMakeFiles/maritime_rtec.dir/DependInfo.cmake"
  "/root/repo/build/src/tracker/CMakeFiles/maritime_tracker.dir/DependInfo.cmake"
  "/root/repo/build/src/ais/CMakeFiles/maritime_ais.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/maritime_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/maritime_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/maritime_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
