# Empty compiler generated dependencies file for fig11a_ce_recognition.
# This may be replaced when dependencies are built.
