"""maritime-lint rule registry and the four shipped rules.

Each rule is a callable registered under a stable name; it receives the whole
`Project` (so rules can use cross-file knowledge such as the global set of
arena-scoped types or Status-returning functions) and yields `Diagnostic`s.
Suppressions (`maritime-lint: allow(...)` directives, see source_model.py)
are applied here, centrally, so every rule honors them identically.

Rules (DESIGN.md §12 documents each contract in full):
  arena-escape    Arena-backed values must not be stored into heap-owned
                  members or returned, unless certified MARITIME_ARENA_ESCAPE_OK.
  status-discard  Calls to Status/Result-returning functions must consume
                  the value.
  lock-discipline A class owning a std::mutex must guard at least one member
                  with it (MARITIME_GUARDED_BY), else the mutex is invisible
                  to Clang's thread-safety analysis.
  determinism     Range-iteration over unordered containers inside
                  MARITIME_COMMIT_BOUNDARY / MARITIME_OUTPUT_PATH functions
                  must sort before escaping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from source_model import SourceFile, split_top_level

_ID_RE = re.compile(r"[A-Za-z_]\w*")


@dataclass(frozen=True)
class Diagnostic:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RULES: dict[str, object] = {}


def rule(name, doc):
    def deco(fn):
        fn.rule_name = name
        fn.rule_doc = doc
        RULES[name] = fn
        return fn
    return deco


class Project:
    """All parsed files plus the cross-file indexes the rules need."""

    def __init__(self, files: list[SourceFile]):
        self.files = files
        self.arena_types = self._arena_types()
        self.statusy, self.ambiguous = self._status_functions()
        self.unordered_aliases = self._unordered_aliases()
        self.decl_types = self._decl_types()

    # -- arena-scoped type set ---------------------------------------------
    def _arena_types(self) -> set[str]:
        types = set()
        aliases = []
        for sf in self.files:
            for cls in sf.classes:
                if "MARITIME_ARENA_SCOPED" in cls.annotations:
                    types.add(cls.name)
            for al in sf.aliases:
                if "MARITIME_ARENA_SCOPED" in al.annotations:
                    types.add(al.name)
                aliases.append(al)
        # Aliases are arena-scoped transitively: `using PointVec =
        # ArenaVector<ValuedPoint>` inherits from ArenaVector.
        changed = True
        while changed:
            changed = False
            for al in aliases:
                if al.name not in types and _mentions(al.rhs, types):
                    types.add(al.name)
                    changed = True
        return types

    # -- Status/Result-returning function names ----------------------------
    def _status_functions(self) -> tuple[set[str], set[str]]:
        statusy, other = set(), set()
        for sf in self.files:
            for fn in sf.functions:
                name = fn.name.rsplit("::", 1)[-1]
                if not _ID_RE.fullmatch(name) or name[0] == "~":
                    continue
                if _is_status_type(fn.ret_type):
                    statusy.add(name)
                elif fn.ret_type:
                    other.add(name)
        # A name declared with both Status and non-Status return types
        # somewhere in the tree is ambiguous at the textual level; the
        # [[nodiscard]] compiler sweep still covers those call sites.
        return statusy, statusy & other

    # -- unordered container aliases ---------------------------------------
    def _unordered_aliases(self) -> set[str]:
        names = set()
        aliases = [al for sf in self.files for al in sf.aliases]
        changed = True
        while changed:
            changed = False
            for al in aliases:
                if al.name in names:
                    continue
                if _unordered_at_top(al.rhs, names):
                    names.add(al.name)
                    changed = True
        return names

    # -- global name -> declared types (members of any class) --------------
    def _decl_types(self) -> dict[str, list[str]]:
        table: dict[str, list[str]] = {}
        for sf in self.files:
            for cls in sf.classes:
                for m in cls.members:
                    table.setdefault(m.name, []).append(m.type)
        return table


def _mentions(type_text: str, names: set[str]) -> bool:
    return any(t in names for t in _ID_RE.findall(type_text))


def _is_status_type(ret: str) -> bool:
    ret = ret.strip()
    return re.fullmatch(
        r"(?:const\s+)?(?:\w+\s*::\s*)*(Status|Result\s*<.*>)\s*[&*]*",
        ret, flags=re.S) is not None


_UNORDERED_HEAD = re.compile(
    r"^(?:const\s+)?(?:\w+\s*::\s*)*(unordered_(?:multi)?(?:map|set))\s*<")
_SEQ_HEAD = re.compile(
    r"^(?:const\s+)?(?:mutable\s+)?(?:\w+\s*::\s*)*"
    r"(?:vector|array|deque|span)\s*<(.*)>\s*[&*]*$", flags=re.S)


def _unordered_at_top(type_text: str, alias_names: set[str]) -> bool:
    """True when the outermost type is an unordered container (directly or
    via a known alias)."""
    t = type_text.strip()
    t = re.sub(r"^(?:const|mutable|typename)\s+", "", t).rstrip("&* \t\n")
    if _UNORDERED_HEAD.match(t):
        return True
    head = _ID_RE.match(re.sub(r"^(?:\w+\s*::\s*)+", "", t))
    return head is not None and head.group(0) in alias_names


def _peel_element(type_text: str) -> str | None:
    """vector<X> / array<X, N> / deque<X> / span<X> -> X (for one [i])."""
    m = _SEQ_HEAD.match(type_text.strip())
    if not m:
        return None
    return split_top_level(m.group(1), ",")[0].strip()


def _enclosing_arena_scoped(cls, arena_types: set[str]) -> bool:
    return cls is not None and any(
        c.name in arena_types for c in [cls] + cls.parents)


# ---------------------------------------------------------------------------
@rule("arena-escape",
      "arena-scoped values must not be stored in heap-owned members or "
      "returned without MARITIME_ARENA_ESCAPE_OK")
def check_arena_escape(project: Project):
    S = project.arena_types
    if not S:
        return
    for sf in project.files:
        for cls in sf.classes:
            if _enclosing_arena_scoped(cls, S):
                continue  # members of arena-scoped types stay in scope
            for m in cls.members:
                if "MARITIME_ARENA_ESCAPE_OK" in m.annotations:
                    continue
                if _mentions(m.type, S):
                    yield Diagnostic(
                        sf.path, m.line, "arena-escape",
                        f"member '{m.name}' of '{cls.name}' holds "
                        f"arena-scoped type '{m.type.strip()}'; arena memory "
                        "dies at Arena::Reset() — copy out at commit, or "
                        "certify a heap backing with MARITIME_ARENA_ESCAPE_OK")
        for fn in sf.functions:
            if "::" in fn.name:
                continue  # out-of-line definition; the declaration is checked
            if "MARITIME_ARENA_ESCAPE_OK" in fn.annotations:
                continue
            if _enclosing_arena_scoped(fn.owner, S):
                continue
            if _mentions(fn.ret_type, S):
                yield Diagnostic(
                    sf.path, fn.line, "arena-escape",
                    f"function '{fn.name}' returns arena-scoped type "
                    f"'{fn.ret_type.strip()}' across the slide scope; "
                    "annotate MARITIME_ARENA_ESCAPE_OK if the returned "
                    "backing is committed heap state")


# ---------------------------------------------------------------------------
_CHAIN_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\s*(?:::|\.|->)\s*|\s*\(\s*\)\s*(?:\.|->)\s*|"
    r"\s*\[[^\[\]]*\]\s*(?:\.|->)\s*))*([A-Za-z_]\w*)\s*\(")


@rule("status-discard",
      "every call to a Status/Result-returning function must consume the "
      "returned value")
def check_status_discard(project: Project):
    known = project.statusy - project.ambiguous
    if not known:
        return
    for sf in project.files:
        for fn in sf.functions:
            if fn.body is None:
                continue
            body = sf.code[fn.body[0]:fn.body[1]]
            for stmt, off in _statements(body, fn.body[0]):
                m = _CHAIN_RE.match(stmt)
                if not m:
                    continue
                callee = m.group(1)
                if callee not in known:
                    continue
                # The call must BE the statement: its closing parenthesis is
                # the last non-space character.
                depth = 0
                call_end = -1
                for i in range(m.end() - 1, len(stmt)):
                    if stmt[i] == "(":
                        depth += 1
                    elif stmt[i] == ")":
                        depth -= 1
                        if depth == 0:
                            call_end = i
                            break
                if call_end < 0 or stmt[call_end + 1:].strip():
                    continue
                line = sf.line_of(off + (len(stmt) - len(stmt.lstrip())))
                yield Diagnostic(
                    sf.path, line, "status-discard",
                    f"result of '{callee}' (returns Status/Result) is "
                    "discarded; check it, or cast to void with a reason")


def _statements(body: str, base: int):
    """Yields (statement text, offset) for ';'-terminated statements at any
    block depth, splitting also at '{' and '}' boundaries."""
    start = 0
    depth = 0
    for i, c in enumerate(body):
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif depth == 0 and c in ";{}":
            if c == ";":
                yield body[start:i], base + start
            start = i + 1
    tail = body[start:]
    if tail.strip():
        yield tail, base + start


# ---------------------------------------------------------------------------
_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b")


@rule("lock-discipline",
      "a class owning a std::mutex must annotate at least one member "
      "MARITIME_GUARDED_BY it (naked mutexes are invisible to -Wthread-safety)")
def check_lock_discipline(project: Project):
    for sf in project.files:
        for cls in sf.classes:
            mutexes = [m for m in cls.members if _MUTEX_RE.search(m.type)]
            if not mutexes:
                continue
            guarded = set()
            for m in cls.members:
                guarded |= m.guards
            # Methods annotated REQUIRES/ACQUIRE also prove the mutex is in
            # the analysis; the textual model records guards on members only,
            # so scan the class body for any use of the mutex name inside a
            # thread-safety macro argument.
            body_text = sf.code[cls.body[0]:cls.body[1]]
            for mu in mutexes:
                if mu.name in guarded:
                    continue
                if re.search(
                        r"MARITIME_\w+\s*\([^()]*\b%s\b[^()]*\)"
                        % re.escape(mu.name), body_text):
                    continue
                yield Diagnostic(
                    sf.path, mu.line, "lock-discipline",
                    f"mutex '{mu.name}' of '{cls.name}' guards no member: "
                    "add MARITIME_GUARDED_BY/REQUIRES annotations so "
                    "-Wthread-safety can check the locking protocol, or "
                    "allow(lock-discipline) with the reason it is unguarded")


# ---------------------------------------------------------------------------
_RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
_SORT_RE = re.compile(r"\b(?:std\s*::\s*)?(?:stable_)?sort\s*\(")


@rule("determinism",
      "no committed/serialized state may depend on unordered-container "
      "iteration order inside MARITIME_COMMIT_BOUNDARY/OUTPUT_PATH functions")
def check_determinism(project: Project):
    for sf in project.files:
        for fn in sf.functions:
            if fn.body is None:
                continue
            if not ({"MARITIME_COMMIT_BOUNDARY", "MARITIME_OUTPUT_PATH"}
                    & fn.annotations):
                continue
            body = sf.code[fn.body[0]:fn.body[1]]
            for m in _RANGE_FOR_RE.finditer(body):
                open_at = m.end() - 1
                close = _match_paren(body, open_at)
                if close < 0:
                    continue
                head = body[open_at + 1:close]
                parts = split_top_level(head, ":")
                if len(parts) != 2:
                    continue  # classic for, or init-statement range-for
                expr = parts[1].strip()
                if not _expr_is_unordered(expr, project):
                    continue
                if _SORT_RE.search(body, close):
                    continue  # result is sorted before escaping
                line = sf.line_of(fn.body[0] + m.start())
                yield Diagnostic(
                    sf.path, line, "determinism",
                    f"range-for over unordered container '{expr}' inside "
                    f"commit/output-path function '{fn.name}': hash order "
                    "leaks into committed state; sort before escaping or "
                    "allow(determinism) with the reason order cannot escape")


def _match_paren(s: str, open_at: int) -> int:
    depth = 0
    for i in range(open_at, len(s)):
        if s[i] == "(":
            depth += 1
        elif s[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _expr_is_unordered(expr: str, project: Project) -> bool:
    """Resolves the iterated expression's type textually: a bare identifier,
    a member access chain (last field), or one subscript level of a sequence
    container. Function-call results are the callee's responsibility."""
    e = expr.strip()
    if e.endswith(")"):
        return False  # iterating a call result
    subscripts = 0
    while True:
        m = re.search(r"\[[^\[\]]*\]\s*$", e)
        if not m:
            break
        e = e[:m.start()].rstrip()
        subscripts += 1
    ids = _ID_RE.findall(e)
    if not ids:
        return False
    name = ids[-1]
    for type_text in project.decl_types.get(name, ()):
        t = type_text
        for _ in range(subscripts):
            elem = _peel_element(t)
            if elem is None:
                break
            t = elem
        if _unordered_at_top(t, project.unordered_aliases):
            return True
    return False


# ---------------------------------------------------------------------------
def run_rules(project: Project, names=None) -> list[Diagnostic]:
    selected = RULES if names is None else {n: RULES[n] for n in names}
    diags = []
    by_path = {sf.path: sf for sf in project.files}
    for fn in selected.values():
        for d in fn(project):
            sf = by_path[d.path]
            if sf.allowed(d.line, d.rule):
                continue
            diags.append(d)
    diags.sort(key=lambda d: (d.path, d.line, d.rule))
    return diags
