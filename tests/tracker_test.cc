#include <gtest/gtest.h>

#include <algorithm>

#include "sim/scenarios.h"
#include "tracker/compressor.h"
#include "tracker/mobility_tracker.h"

namespace maritime::tracker {
namespace {

using sim::TraceBuilder;
using stream::PositionTuple;

const geo::GeoPoint kOrigin{24.0, 37.0};
constexpr stream::Mmsi kShip = 23700001;

std::vector<CriticalPoint> RunTracker(
    MobilityTracker& tracker, const std::vector<PositionTuple>& tuples,
    bool finish = true) {
  std::vector<CriticalPoint> out;
  for (const auto& t : tuples) tracker.Process(t, &out);
  if (finish) tracker.Finish(&out);
  return out;
}

size_t CountFlag(const std::vector<CriticalPoint>& cps, CriticalFlag f) {
  return static_cast<size_t>(
      std::count_if(cps.begin(), cps.end(),
                    [f](const CriticalPoint& c) { return c.Has(f); }));
}

TEST(TrackerParamsTest, DefaultsValid) {
  EXPECT_TRUE(TrackerParams().Validate().ok());
}

TEST(TrackerParamsTest, RejectsBadValues) {
  TrackerParams p;
  p.min_speed_knots = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = TrackerParams();
  p.speed_change_ratio = 1.5;
  EXPECT_FALSE(p.Validate().ok());
  p = TrackerParams();
  p.history_size = 1;
  EXPECT_FALSE(p.Validate().ok());
  p = TrackerParams();
  p.turn_threshold_deg = 200.0;
  EXPECT_FALSE(p.Validate().ok());
  p = TrackerParams();
  p.slow_speed_knots = 0.5;  // below min_speed
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CriticalFlagsTest, Stringification) {
  EXPECT_EQ(CriticalFlagsToString(0), "none");
  EXPECT_EQ(CriticalFlagsToString(kTurn), "turn");
  EXPECT_EQ(CriticalFlagsToString(kTurn | kSpeedChange),
            "turn|speed_change");
}

TEST(TrackerTest, FirstPositionIsCritical) {
  MobilityTracker tracker;
  const auto cps = RunTracker(
      tracker, {PositionTuple{kShip, kOrigin, 100}}, /*finish=*/false);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_TRUE(cps[0].Has(kFirst));
  EXPECT_EQ(cps[0].tau, 100);
}

TEST(TrackerTest, StraightCruiseEmitsNothingInBetween) {
  // A vessel on a straight, constant-speed course contributes no critical
  // points beyond its first/last anchors: the paper's core compression
  // claim.
  MobilityTracker tracker;
  const auto tuples =
      TraceBuilder(kShip, kOrigin, 0).Cruise(45.0, 12.0, 2 * kHour, 30).Build();
  const auto cps = RunTracker(tracker, tuples);
  EXPECT_EQ(cps.size(), 2u);
  EXPECT_TRUE(cps.front().Has(kFirst));
  EXPECT_TRUE(cps.back().Has(kLast));
  EXPECT_GT(tracker.stats().processed, 200u);
  EXPECT_GT(tracker.stats().CompressionRatio(), 0.98);
}

TEST(TrackerTest, StaleTuplesDiscarded) {
  MobilityTracker tracker;
  std::vector<CriticalPoint> out;
  tracker.Process({kShip, kOrigin, 100}, &out);
  tracker.Process({kShip, kOrigin, 90}, &out);   // older
  tracker.Process({kShip, kOrigin, 100}, &out);  // duplicate time
  EXPECT_EQ(tracker.stats().stale_discarded, 2u);
  EXPECT_EQ(tracker.stats().accepted, 1u);
}

TEST(TrackerTest, SharpTurnDetected) {
  MobilityTracker tracker;  // default Δθ = 5°
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 12.0, 20 * kMinute, 30)
                          .Cruise(40.0, 12.0, 20 * kMinute, 30)
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  EXPECT_GE(CountFlag(cps, kTurn), 1u);
}

TEST(TrackerTest, TurnBelowThresholdIgnored) {
  TrackerParams p;
  p.turn_threshold_deg = 15.0;
  MobilityTracker tracker(p);
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 12.0, 20 * kMinute, 30)
                          .Cruise(10.0, 12.0, 20 * kMinute, 30)
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  EXPECT_EQ(CountFlag(cps, kTurn), 0u);
  // The 10° change still accumulates as a smooth turn (cumulative < Δθ here,
  // single change of 10 < 15): nothing at all.
  EXPECT_EQ(CountFlag(cps, kSmoothTurn), 0u);
}

TEST(TrackerTest, SmoothTurnAccumulates) {
  TrackerParams p;
  p.turn_threshold_deg = 15.0;
  MobilityTracker tracker(p);
  // 3° per report: each below Δθ=15°, cumulatively 36° — a smooth turn.
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 12.0, 10 * kMinute, 30)
                          .SmoothTurn(36.0, 12, 12.0, 30)
                          .Cruise(36.0, 12.0, 10 * kMinute, 30)
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  EXPECT_GE(CountFlag(cps, kSmoothTurn), 1u);
  EXPECT_EQ(CountFlag(cps, kTurn), 0u);
}

TEST(TrackerTest, SpeedChangeDetected) {
  MobilityTracker tracker;  // α = 25%
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 14.0, 20 * kMinute, 30)
                          .Cruise(0.0, 7.0, 20 * kMinute, 30)
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  EXPECT_GE(CountFlag(cps, kSpeedChange), 1u);
}

TEST(TrackerTest, SmallSpeedFluctuationIgnored) {
  MobilityTracker tracker;
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 12.0, 20 * kMinute, 30)
                          .Cruise(0.0, 11.0, 20 * kMinute, 30)  // ~8% change
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  EXPECT_EQ(CountFlag(cps, kSpeedChange), 0u);
}

TEST(TrackerTest, LongTermStopStartAndEnd) {
  MobilityTracker tracker;  // m = 10, r = 200 m
  const Timestamp stop_begin = 20 * kMinute;
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 12.0, stop_begin, 30)
                          .Drift(40 * kMinute, 60, 10.0)
                          .Cruise(90.0, 12.0, 20 * kMinute, 30)
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  ASSERT_EQ(CountFlag(cps, kStopStart), 1u);
  ASSERT_EQ(CountFlag(cps, kStopEnd), 1u);
  const auto start = std::find_if(
      cps.begin(), cps.end(),
      [](const CriticalPoint& c) { return c.Has(kStopStart); });
  const auto end = std::find_if(
      cps.begin(), cps.end(),
      [](const CriticalPoint& c) { return c.Has(kStopEnd); });
  // The stop begins at (roughly) the first drift sample and lasts ~40 min.
  EXPECT_NEAR(static_cast<double>(start->tau),
              static_cast<double>(stop_begin), 2.0 * 60.0 + 1.0);
  EXPECT_GT(end->duration, 30 * kMinute);
  EXPECT_LE(end->duration, 41 * kMinute);
  // The representative point (centroid) is near the actual anchorage.
  const geo::GeoPoint anchorage =
      geo::DestinationPoint(kOrigin, 0.0,
                            12.0 * geo::kKnotsToMps * stop_begin);
  EXPECT_LT(geo::HaversineMeters(end->pos, anchorage), 100.0);
}

TEST(TrackerTest, ShortPauseIsNotAStop) {
  MobilityTracker tracker;  // m = 10
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 12.0, 20 * kMinute, 30)
                          .Hold(4 * kMinute, 60)  // only 4 pause samples
                          .Cruise(0.0, 12.0, 20 * kMinute, 30)
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  EXPECT_EQ(CountFlag(cps, kStopStart), 0u);
  EXPECT_EQ(CountFlag(cps, kStopEnd), 0u);
}

TEST(TrackerTest, SlowMotionDetected) {
  MobilityTracker tracker;  // slow threshold 4 kn, m = 10
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 10.0, 20 * kMinute, 30)
                          .Cruise(0.0, 2.8, 30 * kMinute, 60)  // trawling
                          .Cruise(0.0, 10.0, 20 * kMinute, 30)
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  EXPECT_EQ(CountFlag(cps, kSlowMotionStart), 1u);
  EXPECT_EQ(CountFlag(cps, kSlowMotionEnd), 1u);
  // Slow-motion samples spread along a path: no stop detected.
  EXPECT_EQ(CountFlag(cps, kStopStart), 0u);
}

TEST(TrackerTest, GapDetectedRetrospectively) {
  MobilityTracker tracker;  // ΔT = 10 min
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 12.0, 20 * kMinute, 30)
                          .Silence(30 * kMinute)
                          .Cruise(0.0, 12.0, 20 * kMinute, 30)
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  ASSERT_EQ(CountFlag(cps, kGapStart), 1u);
  ASSERT_EQ(CountFlag(cps, kGapEnd), 1u);
  const auto gs = std::find_if(cps.begin(), cps.end(), [](const auto& c) {
    return c.Has(kGapStart);
  });
  const auto ge = std::find_if(cps.begin(), cps.end(), [](const auto& c) {
    return c.Has(kGapEnd);
  });
  EXPECT_EQ(ge->tau - gs->tau, ge->duration);
  EXPECT_GE(ge->duration, 30 * kMinute);
}

TEST(TrackerTest, GapDetectedOnlineByAdvanceTo) {
  MobilityTracker tracker;
  std::vector<CriticalPoint> out;
  const auto tuples =
      TraceBuilder(kShip, kOrigin, 0).Cruise(0.0, 12.0, 10 * kMinute, 30)
          .Build();
  for (const auto& t : tuples) tracker.Process(t, &out);
  const Timestamp last_report = tuples.back().tau;
  out.clear();
  // Query times keep firing while the vessel is silent.
  tracker.AdvanceTo(last_report + 5 * kMinute, &out);
  EXPECT_EQ(CountFlag(out, kGapStart), 0u) << "not silent long enough yet";
  tracker.AdvanceTo(last_report + 11 * kMinute, &out);
  ASSERT_EQ(CountFlag(out, kGapStart), 1u);
  EXPECT_EQ(out[0].tau, last_report) << "gap reported at its starting point";
  // No duplicate report on later slides.
  tracker.AdvanceTo(last_report + kHour, &out);
  EXPECT_EQ(CountFlag(out, kGapStart), 1u);
  // When the vessel resumes, the gap closes.
  out.clear();
  tracker.Process({kShip, kOrigin, last_report + 2 * kHour}, &out);
  ASSERT_EQ(CountFlag(out, kGapEnd), 1u);
  EXPECT_EQ(out[0].duration, 2 * kHour);
}

TEST(TrackerTest, StopInterruptedByGapIsClosed) {
  MobilityTracker tracker;
  const auto tuples = TraceBuilder(kShip, kOrigin, 0)
                          .Cruise(0.0, 12.0, 10 * kMinute, 30)
                          .Drift(30 * kMinute, 60, 8.0)
                          .Silence(kHour, /*keep_moving=*/false)
                          .Drift(10 * kMinute, 60, 8.0)
                          .Build();
  const auto cps = RunTracker(tracker, tuples);
  // The stop must have been finalized before the gap started.
  ASSERT_GE(CountFlag(cps, kStopEnd), 1u);
  ASSERT_GE(CountFlag(cps, kGapStart), 1u);
  const auto stop_end = std::find_if(cps.begin(), cps.end(), [](const auto& c) {
    return c.Has(kStopEnd);
  });
  const auto gap_start = std::find_if(
      cps.begin(), cps.end(), [](const auto& c) { return c.Has(kGapStart); });
  EXPECT_LE(stop_end->tau, gap_start->tau);
}

TEST(TrackerTest, OutlierDiscarded) {
  MobilityTracker tracker;
  auto builder = TraceBuilder(kShip, kOrigin, 0);
  builder.Cruise(0.0, 10.0, 20 * kMinute, 30)
      .Outlier(4000.0, 90.0, 30)
      .Cruise(0.0, 10.0, 20 * kMinute, 30);
  const auto tuples = std::move(builder).Build();
  const auto cps = RunTracker(tracker, tuples);
  EXPECT_EQ(tracker.stats().outliers_discarded, 1u);
  // The bogus position must not appear among the critical points: every
  // critical point stays on (or near) the true track, far from the 4 km
  // offset where the outlier was injected.
  const geo::GeoPoint true_track_abeam = geo::DestinationPoint(
      kOrigin, 0.0, 10.0 * geo::kKnotsToMps * 20.0 * 60.0);  // 20 min @10 kn
  const geo::GeoPoint bogus =
      geo::DestinationPoint(true_track_abeam, 90.0, 4000.0);
  for (const auto& cp : cps) {
    EXPECT_GT(geo::HaversineMeters(cp.pos, bogus), 1000.0) << cp;
  }
}

TEST(TrackerTest, PersistentDeviationResetsInsteadOfDiscardingForever) {
  TrackerParams p;
  p.outlier_reset_count = 3;
  MobilityTracker tracker(p);
  std::vector<CriticalPoint> out;
  // Steady 10 kn north for 15 samples.
  auto builder = TraceBuilder(kShip, kOrigin, 0);
  builder.Cruise(0.0, 10.0, 8 * kMinute, 30);
  for (const auto& t : builder.tuples()) tracker.Process(t, &out);
  // Then the vessel genuinely jumps: a fast run at a wildly different
  // velocity (e.g. corrected GPS). After outlier_reset_count consecutive
  // "outliers" the tracker accepts the new course.
  const geo::GeoPoint far =
      geo::DestinationPoint(builder.position(), 90.0, 20000.0);
  Timestamp t = builder.now();
  for (int i = 0; i < 5; ++i) {
    t += 30;
    tracker.Process(
        {kShip, geo::DestinationPoint(far, 0.0, 100.0 * i), t}, &out);
  }
  EXPECT_GE(tracker.stats().outlier_resets, 1u);
  const VesselState* vs = tracker.FindVessel(kShip);
  ASSERT_NE(vs, nullptr);
  EXPECT_LT(geo::HaversineMeters(vs->last.pos, far), 1000.0);
}

TEST(TrackerTest, PerVesselIsolation) {
  MobilityTracker tracker;
  const auto a = TraceBuilder(kShip, kOrigin, 0)
                     .Cruise(0.0, 12.0, 30 * kMinute, 30)
                     .Build();
  const auto b = TraceBuilder(kShip + 1, geo::GeoPoint{25.0, 38.0}, 0)
                     .Cruise(180.0, 8.0, 30 * kMinute, 30)
                     .Build();
  const auto merged = sim::MergeTraces({a, b});
  const auto cps = RunTracker(tracker, merged);
  EXPECT_EQ(tracker.vessel_count(), 2u);
  // Interleaving two straight cruises must not create spurious events.
  EXPECT_EQ(CountFlag(cps, kTurn), 0u);
  EXPECT_EQ(CountFlag(cps, kFirst), 2u);
  EXPECT_EQ(CountFlag(cps, kLast), 2u);
}

TEST(TrackerTest, ComplexityIsBoundedPerVesselState) {
  // O(m) state: the recent-velocity and heading rings must stay at m.
  TrackerParams p;
  p.history_size = 10;
  MobilityTracker tracker(p);
  const auto tuples =
      TraceBuilder(kShip, kOrigin, 0).Cruise(0.0, 12.0, 3 * kHour, 30).Build();
  std::vector<CriticalPoint> out;
  for (const auto& t : tuples) tracker.Process(t, &out);
  const VesselState* vs = tracker.FindVessel(kShip);
  ASSERT_NE(vs, nullptr);
  EXPECT_LE(vs->recent_velocities.size(), 10u);
  EXPECT_LE(vs->heading_diffs.size(), 10u);
  EXPECT_LE(vs->slow_buffer.size(), 10u);
}

TEST(CompressorTest, CoalescesSameVesselSameTime) {
  Compressor c;
  CriticalPoint a;
  a.mmsi = kShip;
  a.tau = 100;
  a.flags = kTurn;
  CriticalPoint b = a;
  b.flags = kSpeedChange;
  b.duration = 60;
  const auto out = c.Compress({a, b}, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].flags, kTurn | kSpeedChange);
  EXPECT_EQ(out[0].duration, 60);
  EXPECT_EQ(c.stats().raw_positions, 10u);
  EXPECT_EQ(c.stats().critical_points, 1u);
  EXPECT_NEAR(c.stats().ratio(), 0.9, 1e-12);
}

TEST(CompressorTest, SortsStreamOrder) {
  Compressor c;
  CriticalPoint a;
  a.mmsi = 2;
  a.tau = 100;
  CriticalPoint b;
  b.mmsi = 1;
  b.tau = 200;
  CriticalPoint d;
  d.mmsi = 1;
  d.tau = 50;
  const auto out = c.Compress({a, b, d}, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].tau, 50);
  EXPECT_EQ(out[1].tau, 100);
  EXPECT_EQ(out[2].tau, 200);
}

TEST(CompressorTest, EmptyBatch) {
  Compressor c;
  EXPECT_TRUE(c.Compress({}, 100).empty());
  EXPECT_EQ(c.stats().raw_positions, 100u);
  EXPECT_NEAR(c.stats().ratio(), 1.0, 1e-12);
}

}  // namespace
}  // namespace maritime::tracker
