#ifndef MARITIME_COMMON_TIME_H_
#define MARITIME_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace maritime {

/// Discrete, totally ordered timestamp in seconds (paper Section 2: positions
/// are sampled "at discrete, totally ordered timestamps τ ... at the
/// granularity of seconds"). Interpreted as seconds since an arbitrary
/// stream epoch (the simulator uses 0 = stream start).
using Timestamp = int64_t;

/// A length of time in seconds.
using Duration = int64_t;

/// Sentinel for "no timestamp".
inline constexpr Timestamp kInvalidTimestamp = INT64_MIN;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 86400;

/// Formats a duration as "Nd HH:MM:SS" (days omitted when zero), matching the
/// style of Table 4 in the paper ("1 day 07:20:58").
std::string FormatDuration(Duration d);

/// Formats a timestamp as "HH:MM:SS" offset from the stream epoch, with a day
/// prefix when >= 24h.
std::string FormatTimestamp(Timestamp t);

}  // namespace maritime

#endif  // MARITIME_COMMON_TIME_H_
