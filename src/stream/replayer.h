#ifndef MARITIME_STREAM_REPLAYER_H_
#define MARITIME_STREAM_REPLAYER_H_

#include <span>
#include <vector>

#include "stream/position.h"

namespace maritime::stream {

/// Replays a recorded positional stream in timestamp order, handing out the
/// batch of tuples that "arrived" up to each successive query time. This is
/// the simulation harness of paper Section 5: "we simulated a streaming
/// behavior by consuming this positional data little by little, reading
/// small chunks periodically according to window specifications", with the
/// window keeping pace with the reported timestamps rather than wall-clock
/// time.
class StreamReplayer {
 public:
  /// `tuples` need not be sorted; the replayer sorts a copy into stream
  /// order once.
  explicit StreamReplayer(std::vector<PositionTuple> tuples);

  /// Tuples with `tau` in (last consumed, until]. Subsequent calls continue
  /// from where the previous batch stopped. The span is valid until the
  /// replayer is destroyed.
  std::span<const PositionTuple> NextBatch(Timestamp until);

  /// True when the stream is exhausted.
  bool Done() const { return cursor_ >= tuples_.size(); }

  /// Rewinds to the beginning.
  void Reset() { cursor_ = 0; }

  /// Timestamp of the first/last tuple (kInvalidTimestamp when empty).
  Timestamp first_timestamp() const;
  Timestamp last_timestamp() const;

  size_t size() const { return tuples_.size(); }
  const std::vector<PositionTuple>& tuples() const { return tuples_; }

 private:
  std::vector<PositionTuple> tuples_;
  size_t cursor_ = 0;
};

}  // namespace maritime::stream

#endif  // MARITIME_STREAM_REPLAYER_H_
