#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/check.h"

namespace maritime::common {
namespace {

/// Shared state of one ParallelFor call. Kept alive by shared_ptr until the
/// last helper task has run, which may be after the call itself returned
/// (a queued helper that finds no index left exits without touching `body`).
struct ForState {
  explicit ForState(size_t n_in) : n(n_in) {}
  const size_t n;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  // mu guards no data — all shared state is atomic; the mutex only sequences
  // the cv wait/notify handshake so the completion signal cannot be missed
  // between check and wait.
  // maritime-lint: allow-next-line(lock-discipline): cv companion only
  std::mutex mu;
  std::condition_variable cv;
};

void DrainIndices(ForState& state, const std::function<void(size_t)>& body) {
  while (true) {
    const size_t i = state.next.fetch_add(1);
    if (i >= state.n) break;
    body(i);
    if (state.done.fetch_add(1) + 1 == state.n) {
      std::lock_guard<std::mutex> lock(state.mu);
      state.cv.notify_all();
    }
  }
}

void DrainIndicesSlot(ForState& state, size_t slot,
                      const std::function<void(size_t, size_t)>& body) {
  while (true) {
    const size_t i = state.next.fetch_add(1);
    if (i >= state.n) break;
    body(i, slot);
    if (state.done.fetch_add(1) + 1 == state.n) {
      std::lock_guard<std::mutex> lock(state.mu);
      state.cv.notify_all();
    }
  }
}

int SharedPoolWorkers() {
  int width = 0;
  if (const char* env = std::getenv("MARITIME_THREADS")) {
    width = std::atoi(env);
  }
  if (width <= 0) {
    width = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (width <= 0) width = 2;
  return width - 1;  // The ParallelFor caller supplies the last lane.
}

}  // namespace

ThreadPool::ThreadPool(int workers) {
  workers_.reserve(static_cast<size_t>(workers > 0 ? workers : 0));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Stop(); }

void ThreadPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Exactly one caller joins; the others wait here until it has finished, so
  // every Stop() returns only once the workers are really gone.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) return;
  for (auto& w : workers_) w.join();
  joined_ = true;
  // Anything still queued was submitted concurrently with the stop flag and
  // never claimed by a worker; run it here so no task is silently dropped.
  std::deque<std::function<void()>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(tasks_);
  }
  for (auto& task : leftovers) task();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() MARITIME_REQUIRES(mu_) {
        return stop_ || !tasks_.empty();
      });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  MARITIME_DCHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      tasks_.push_back(std::move(task));
      task = nullptr;
    }
  }
  if (task != nullptr) {
    // Stopped pool: execute inline so fire-and-forget work still happens and
    // a racing ParallelFor still terminates (its helpers drain serially).
    task();
    return;
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>(n);
  const size_t helpers = std::min(n - 1, workers_.size());
  for (size_t h = 0; h < helpers; ++h) {
    // `body` is captured by reference: every index is claimed before the
    // call returns, so any task outliving the call exits immediately from
    // DrainIndices without dereferencing it.
    Submit([state, &body] { DrainIndices(*state, body); });
  }
  DrainIndices(*state, body);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  auto state = std::make_shared<ForState>(n);
  const size_t helpers = std::min(n - 1, workers_.size());
  for (size_t h = 0; h < helpers; ++h) {
    // Slot h + 1 belongs to exactly this task closure; a closure runs on one
    // thread, so the slot is never bumped concurrently. Slot 0 is the caller.
    Submit([state, &body, h] { DrainIndicesSlot(*state, h + 1, body); });
  }
  DrainIndicesSlot(*state, 0, body);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(SharedPoolWorkers());
  return pool;
}

}  // namespace maritime::common
