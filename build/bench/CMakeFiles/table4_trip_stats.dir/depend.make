# Empty dependencies file for table4_trip_stats.
# This may be replaced when dependencies are built.
