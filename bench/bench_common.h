#ifndef MARITIME_BENCH_BENCH_COMMON_H_
#define MARITIME_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/generator.h"
#include "sim/world.h"
#include "stream/position.h"

namespace maritime::bench {

/// Fleet/duration scale factor, from MARITIME_BENCH_SCALE (default 1).
/// The default scale keeps every bench binary minutes-fast on a laptop;
/// scale >= 10 approaches the paper's 6425-vessel setting.
inline double Scale() {
  const char* env = std::getenv("MARITIME_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double s = std::atof(env);
  return s > 0.0 ? s : 1.0;
}

inline double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BenchStream {
  sim::World world;
  std::vector<stream::PositionTuple> tuples;
  sim::GroundTruth truth;
  std::vector<sim::SimVessel> fleet;
};

/// Deterministic synthetic workload shared by the bench binaries: a
/// full-feature fleet (ferries, traders, trawlers, intruders, loiterers)
/// over the default 35-area world.
inline BenchStream MakeBenchStream(int base_vessels, Duration duration,
                                   uint64_t seed = 1234) {
  BenchStream out{sim::BuildWorld(seed), {}, {}, {}};
  sim::FleetConfig cfg;
  cfg.vessels = static_cast<int>(base_vessels * Scale());
  cfg.duration = duration;
  cfg.seed = seed + 1;
  sim::FleetSimulator fleet(&out.world, cfg);
  out.tuples = fleet.Generate();
  out.truth = fleet.ground_truth();
  out.fleet = fleet.fleet();
  return out;
}

/// Clones every vessel `factor` times with distinct MMSIs, multiplying the
/// stream arrival rate without distorting per-vessel kinematics (used by the
/// Figure 7 stress test). Registers the clones in the world's knowledge
/// base.
inline std::vector<stream::PositionTuple> AmplifyStream(
    const std::vector<stream::PositionTuple>& base, int factor,
    sim::World* world) {
  std::vector<stream::PositionTuple> out;
  out.reserve(base.size() * static_cast<size_t>(factor));
  for (int k = 0; k < factor; ++k) {
    const stream::Mmsi offset = 10000000u * static_cast<stream::Mmsi>(k);
    for (const auto& t : base) {
      out.push_back(
          stream::PositionTuple{t.mmsi + offset, t.pos, t.tau});
    }
  }
  std::stable_sort(out.begin(), out.end(), stream::StreamOrder);
  if (world != nullptr && factor > 1) {
    std::vector<surveillance::VesselInfo> originals;
    // Snapshot before inserting clones.
    for (const auto& t : base) {
      const auto* v = world->knowledge.FindVessel(t.mmsi);
      if (v != nullptr) originals.push_back(*v);
    }
    for (int k = 1; k < factor; ++k) {
      const stream::Mmsi offset = 10000000u * static_cast<stream::Mmsi>(k);
      for (auto v : originals) {
        v.mmsi += offset;
        world->knowledge.AddVessel(v);
      }
    }
  }
  return out;
}

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: %.2fx (set MARITIME_BENCH_SCALE to change)\n", Scale());
  std::printf("==============================================================\n");
}

}  // namespace maritime::bench

#endif  // MARITIME_BENCH_BENCH_COMMON_H_
