#ifndef MARITIME_TRACKER_COMPRESSOR_H_
#define MARITIME_TRACKER_COMPRESSOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "snapshot/codec.h"
#include "tracker/critical_point.h"

namespace maritime::tracker {

/// Aggregate compression statistics (paper Figure 9).
struct CompressionStats {
  uint64_t raw_positions = 0;     ///< Original relayed locations.
  uint64_t critical_points = 0;   ///< Points surviving as critical.

  /// Fraction of original locations discarded; close to 1 means strong
  /// reduction (the paper reports ~94%).
  double ratio() const {
    if (raw_positions == 0) return 0.0;
    return 1.0 - static_cast<double>(critical_points) /
                     static_cast<double>(raw_positions);
  }
};

/// The Compressor of Figure 1: takes the per-slide batch of trajectory
/// events emitted by the mobility tracker, coalesces multiple annotations of
/// the same vessel/time into single critical points, orders them in stream
/// order, and maintains compression statistics against the raw input volume.
///
/// (Outlier filtering happens upstream inside the MobilityTracker, which has
/// the velocity history needed to judge off-course positions.)
class Compressor {
 public:
  /// Coalesces and sorts one batch of critical points. `raw_count` is the
  /// number of raw positions the batch was derived from (for statistics).
  std::vector<CriticalPoint> Compress(std::vector<CriticalPoint> batch,
                                      uint64_t raw_count);

  const CompressionStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CompressionStats{}; }

  // --- checkpointing ------------------------------------------------------
  void SaveTo(snapshot::Writer& w) const;
  Status RestoreFrom(snapshot::Reader& r);

 private:
  CompressionStats stats_;
};

}  // namespace maritime::tracker

#endif  // MARITIME_TRACKER_COMPRESSOR_H_
