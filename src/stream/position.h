#ifndef MARITIME_STREAM_POSITION_H_
#define MARITIME_STREAM_POSITION_H_

#include <cstdint>
#include <ostream>

#include "common/time.h"
#include "geo/geo_point.h"

namespace maritime::stream {

/// Vessel identifier (Maritime Mobile Service Identity).
using Mmsi = uint32_t;

/// The positional stream tuple ⟨MMSI, Lon, Lat, τ⟩ of paper Section 2 — the
/// only four attributes the online analysis consumes. This is an append-only
/// stream: no deletions or updates of received locations.
struct PositionTuple {
  Mmsi mmsi = 0;
  geo::GeoPoint pos;
  Timestamp tau = 0;

  friend bool operator==(const PositionTuple& a, const PositionTuple& b) {
    return a.mmsi == b.mmsi && a.pos == b.pos && a.tau == b.tau;
  }
};

inline std::ostream& operator<<(std::ostream& os, const PositionTuple& p) {
  return os << "{mmsi=" << p.mmsi << " " << p.pos << " tau=" << p.tau << "}";
}

/// Ordering by timestamp then MMSI: the canonical stream order.
inline bool StreamOrder(const PositionTuple& a, const PositionTuple& b) {
  if (a.tau != b.tau) return a.tau < b.tau;
  return a.mmsi < b.mmsi;
}

}  // namespace maritime::stream

#endif  // MARITIME_STREAM_POSITION_H_
