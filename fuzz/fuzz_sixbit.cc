// Fuzz target for payload armoring and the bit-level codec: DearmorPayload,
// BitReader, and the type 1/2/3/5/18/19 message decoders. Besides "no crash
// under sanitizers", it asserts the armoring round-trip: any payload that
// de-armors must re-armor to the same bits.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ais/bit_buffer.h"
#include "ais/messages.h"
#include "ais/sixbit.h"
#include "common/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // First byte selects the declared fill bits (including invalid values, so
  // the [0,5] validation path is exercised); the rest is the armored payload.
  const int fill_bits = static_cast<int>(data[0] % 8);
  const std::string payload(reinterpret_cast<const char*>(data + 1),
                            size - 1);

  const auto bits = maritime::ais::DearmorPayload(payload, fill_bits);
  if (!bits.ok()) return 0;

  // Round-trip property: armoring the de-armored bits reproduces the
  // original payload (the armoring alphabet is a bijection) whenever the
  // payload was canonical, and always reproduces the same bit vector.
  int fill_out = -1;
  const std::string rearmored =
      maritime::ais::ArmorPayload(bits.value(), &fill_out);
  MARITIME_DCHECK(fill_out >= 0 && fill_out <= 5);
  const auto bits2 = maritime::ais::DearmorPayload(rearmored, fill_out);
  MARITIME_DCHECK_OK(bits2);
  MARITIME_DCHECK(bits2.value() == bits.value());

  // Bit-reader sweep: mixed-width reads to the end; past-the-end reads must
  // set overflow and return zero bits, never touch out-of-range memory.
  maritime::ais::BitReader rd(bits.value());
  int width = 1;
  while (!rd.overflow()) {
    (void)rd.ReadUnsigned(width);
    width = width % 64 + 1;
  }
  maritime::ais::BitReader signed_rd(bits.value());
  (void)signed_rd.ReadSigned(28);
  (void)signed_rd.ReadSixbitString(20);

  // Message decoders: must return a value or a Status, never crash.
  (void)maritime::ais::PeekMessageType(bits.value());
  (void)maritime::ais::DecodePositionReport(bits.value());
  (void)maritime::ais::DecodeStaticVoyageData(bits.value());
  return 0;
}
