// maritime-lint fixture: conforming cases for the determinism rule.
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"

namespace fixtures {

class PortLedger {
 public:
  /// Sorted before escaping: hash order cannot reach committed state.
  MARITIME_COMMIT_BOUNDARY void Commit() {
    for (const auto& [port, fee] : fees_) {
      keys_.push_back(port);
    }
    std::sort(keys_.begin(), keys_.end());
  }

  /// Outside any commit/output-path function the rule does not apply.
  int Sum() const {
    int total = 0;
    for (const auto& [port, fee] : fees_) total += fee;
    return total;
  }

  /// Iterating an ordered container is always fine.
  MARITIME_OUTPUT_PATH void Serialize(std::vector<int>* out) const {
    for (int k : keys_) out->push_back(k);
  }

 private:
  std::unordered_map<int, int> fees_;
  std::vector<int> keys_;
};

}  // namespace fixtures
