#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <sstream>
#include <vector>

#include "geo/geo_point.h"
#include "maritime/knowledge.h"
#include "maritime/recognizer.h"
#include "rtec/engine.h"
#include "sim/world.h"
#include "snapshot/codec.h"
#include "stream/sliding_window.h"
#include "tracker/critical_point.h"

namespace maritime::rtec {
namespace {

// ---------------------------------------------------------------------------
// Dependency-scoped dirty propagation (DESIGN.md §14), differential-tested on
// a skewed fleet: one vessel keeps updating while hundreds sit idle. With a
// KeyProjector on the cross-key definition the incremental engine must
// regenerate only the output keys the active vessel projects to — and remain
// bit-identical to both the naive engine and the incremental engine with
// scoping disabled (the fleet-wide regen floor).
// ---------------------------------------------------------------------------

// Output keys: latitude buckets 0..9 over lat in [0, 1).
constexpr int32_t kBucketKind = 1;

int32_t BucketOf(const geo::GeoPoint& p) {
  return std::clamp(static_cast<int32_t>(p.lat * 10.0), 0, 9);
}

struct Schema {
  EventId ping = -1;
  EventId stop = -1;
  FluentId occupied = -1;  // cross-key: some vessel pinged in the bucket
  EventId echo = -1;       // derived: ping in a bucket while occupied holds
};

Schema Register(Engine* eng) {
  Schema s;
  s.ping = eng->DeclareEvent("ping");
  s.stop = eng->DeclareEvent("stop");
  s.occupied = eng->DeclareFluent("occupied");
  s.echo = eng->DeclareEvent("echo");

  // Vessel→bucket projector: the buckets a dirty vessel's coord fixes in
  // force at some time >= `from` fall into. Conservative both ways — the
  // boundary fix covers the bucket the vessel is leaving, later fixes the
  // ones it enters. Bucket-keyed input marks project to themselves.
  DependencySpec::KeyProjector project =
      [](const EvalContext& ctx, Term in_key, Timestamp from,
         std::vector<Term>* out) {
        if (in_key.kind == kBucketKind) {
          out->push_back(in_key);
          return true;
        }
        if (in_key.kind != 0) return false;
        ctx.ForEachCoordCovering(
            in_key, from, [&](Timestamp, const geo::GeoPoint& pos) {
              out->push_back(Term{kBucketKind, BucketOf(pos)});
            });
        return true;
      };

  // occupied(bucket): initiated at any vessel's ping from inside the bucket,
  // terminated at any vessel's stop from inside it. Cross-key with a
  // projector; constant domain (all ten buckets).
  {
    SimpleFluentSpec spec;
    spec.fluent = s.occupied;
    spec.output = true;
    spec.deps = DependencySpec{{s.ping, s.stop}, {}, true, true, project};
    const Schema sc = s;
    spec.domain = [](const EvalContext&) {
      std::vector<Term> keys;
      for (int32_t b = 0; b < 10; ++b) keys.push_back(Term{kBucketKind, b});
      return keys;
    };
    spec.rules = [sc](const EvalContext& ctx, Term key,
                      PointVec* initiated,
                      PointVec* terminated) {
      for (const auto& e : ctx.Events(sc.ping)) {
        if (!ctx.NeedsEval(e.t)) continue;
        const auto pos = ctx.CoordAt(e.subject, e.t);
        if (pos.has_value() && BucketOf(*pos) == key.id) {
          initiated->push_back({kTrue, e.t});
        }
      }
      for (const auto& e : ctx.Events(sc.stop)) {
        if (!ctx.NeedsEval(e.t)) continue;
        const auto pos = ctx.CoordAt(e.subject, e.t);
        if (pos.has_value() && BucketOf(*pos) == key.id) {
          terminated->push_back({kTrue, e.t});
        }
      }
    };
    eng->AddSimpleFluent(std::move(spec));
  }

  // echo(bucket): derived at pings landing in a bucket while occupied(bucket)
  // already holds at the right limit. The occupied dependency is bucket-keyed,
  // exercising the projector's identity branch.
  {
    DerivedEventSpec spec;
    spec.event = s.echo;
    spec.output = true;
    spec.deps = DependencySpec{{s.ping}, {s.occupied}, true, true, project};
    const Schema sc = s;
    spec.compute = [sc](const EvalContext& ctx,
                        std::vector<EventInstance>* out) {
      for (const auto& e : ctx.Events(sc.ping)) {
        if (!ctx.NeedsEval(e.t)) continue;
        const auto pos = ctx.CoordAt(e.subject, e.t);
        if (!pos.has_value()) continue;
        const Term bucket{kBucketKind, BucketOf(*pos)};
        if (ctx.HoldsRightOf(sc.occupied, bucket, kTrue, e.t)) {
          out->push_back({bucket, Term::None(), e.t});
        }
      }
    };
    eng->AddDerivedEvent(std::move(spec));
  }
  return s;
}

std::string Dump(const RecognitionResult& r) {
  std::ostringstream os;
  for (const auto& f : r.fluents) {
    os << "  fluent " << f.fluent << " key " << f.key << " = " << f.value
       << " over";
    for (const auto& iv : f.intervals) {
      os << " (" << iv.since << "," << iv.till << "]";
    }
    os << "\n";
  }
  for (const auto& e : r.events) {
    os << "  event " << e.event << " key " << e.instance.subject << " @ "
       << e.instance.t << "\n";
  }
  return os.str();
}

uint64_t TotalRegenSpan(const Engine& eng) {
  uint64_t sum = 0;
  for (const DefRegenStats& d : eng.def_regen_stats()) sum += d.regen_span_sum;
  return sum;
}

TEST(ScopedDirtyDifferentialTest, SkewedFleetBitIdenticalAndNarrowed) {
  const stream::WindowSpec window{60, 10};
  Engine naive(window);
  EngineOptions scoped_opts;
  scoped_opts.incremental = true;  // scoped_dirty defaults to true
  Engine scoped(window, nullptr, scoped_opts);
  EngineOptions floor_opts;
  floor_opts.incremental = true;
  floor_opts.scoped_dirty = false;  // the fleet-wide regen floor baseline
  Engine floor(window, nullptr, floor_opts);

  const Schema sn = Register(&naive);
  const Schema ss = Register(&scoped);
  const Schema sf = Register(&floor);
  ASSERT_EQ(sn.echo, ss.echo);
  ASSERT_EQ(sn.echo, sf.echo);

  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> kind_dist(0, 99);
  Engine* const engines[] = {&naive, &scoped, &floor};

  // Idle fleet: 300 vessels, each with one coord fix and one ping at the
  // start, spread over every bucket — then silence forever.
  constexpr int kIdle = 300;
  for (int i = 0; i < kIdle; ++i) {
    const Term vessel{0, 100 + i};
    const geo::GeoPoint pos{0.0, (i % 10) * 0.1 + 0.05};
    const Timestamp t = 1 + i % static_cast<int>(window.slide - 1);
    for (Engine* eng : engines) {
      eng->AssertCoord(vessel, t, pos);
      eng->AssertEvent(sn.ping, vessel, t);
    }
  }

  // Active vessel: lives in bucket 3, keeps pinging/stopping every slide with
  // the adversarial timing mix (fresh / delayed / future-dated).
  const Term active{0, 1};
  constexpr int kSlides = 1200;
  for (int slide = 1; slide <= kSlides; ++slide) {
    const Timestamp q = static_cast<Timestamp>(slide) * window.slide;
    const int n = std::uniform_int_distribution<int>(1, 3)(rng);
    for (int i = 0; i < n; ++i) {
      Timestamp t;
      const int when = kind_dist(rng);
      if (when < 80) {
        t = q - window.slide + 1 +
            std::uniform_int_distribution<Timestamp>(0, window.slide - 1)(rng);
      } else if (when < 95) {
        const Timestamp wstart = q > window.range ? q - window.range : 0;
        t = wstart + 1 +
            std::uniform_int_distribution<Timestamp>(
                0, std::max<Timestamp>(0, q - wstart - 1))(rng);
      } else {
        t = q + 1 +
            std::uniform_int_distribution<Timestamp>(0, window.slide)(rng);
      }
      const int what = kind_dist(rng);
      for (Engine* eng : engines) {
        if (what < 25) {
          eng->AssertCoord(active, t,
                           geo::GeoPoint{0.0, 0.3 + (what % 10) * 0.009});
        } else if (what < 85) {
          eng->AssertEvent(sn.ping, active, t);
        } else {
          eng->AssertEvent(sn.stop, active, t);
        }
      }
    }
    const RecognitionResult rn = naive.Recognize(q);
    const RecognitionResult rs = scoped.Recognize(q);
    const RecognitionResult rf = floor.Recognize(q);
    ASSERT_TRUE(rn == rs) << "scoped diverged at q=" << q << "\nnaive:\n"
                          << Dump(rn) << "scoped:\n" << Dump(rs);
    ASSERT_TRUE(rn == rf) << "unscoped diverged at q=" << q << "\nnaive:\n"
                          << Dump(rn) << "unscoped:\n" << Dump(rf);
  }

  // The point of the PR: with one active vessel confined to one bucket, the
  // scoped engine narrows (most) cross-key regen spans below the fleet floor
  // and regenerates far less of the window than the floor baseline, which in
  // turn reports the floor fallback on every dirty cross-key evaluation.
  EXPECT_GT(scoped.cache_stats().spans_narrowed, 0u);
  EXPECT_EQ(scoped.cache_stats().fleet_floor_hits, 0u);
  EXPECT_EQ(floor.cache_stats().spans_narrowed, 0u);
  EXPECT_GT(floor.cache_stats().fleet_floor_hits, 0u);
  EXPECT_LT(TotalRegenSpan(scoped), TotalRegenSpan(floor));
  EXPECT_GT(scoped.cache_stats().hits, floor.cache_stats().hits);
  // The naive engine records neither.
  EXPECT_EQ(naive.cache_stats().spans_narrowed, 0u);
  EXPECT_EQ(naive.cache_stats().fleet_floor_hits, 0u);
}

// ---------------------------------------------------------------------------
// Maritime differential: the full CE definition set (whose four area-keyed
// definitions carry the vessel→area projector) over a synthetic skewed
// fleet — one vessel cycling stop/slow-motion/gap episodes inside one area,
// hundreds parked elsewhere — recognized side by side on the naive engine,
// the scoped incremental engine, the incremental engine with scoping off,
// and the auto engine. Facts mode on and off; delayed MEs; a mid-stream
// snapshot round trip with marks pending must also stay bit-identical.
// ---------------------------------------------------------------------------

std::vector<tracker::CriticalPoint> MakeSkewedCriticals(
    const sim::World& world, int idle_vessels, Duration horizon) {
  std::vector<geo::GeoPoint> centers;
  for (const surveillance::AreaInfo& a : world.knowledge.areas()) {
    if (a.kind != surveillance::AreaKind::kPort) {
      centers.push_back(a.polygon.VertexCentroid());
    }
  }
  std::vector<tracker::CriticalPoint> out;
  // Idle fleet: one stop-start apiece, parked at area centroids round-robin,
  // within the first few minutes — then silence.
  for (int i = 0; i < idle_vessels; ++i) {
    tracker::CriticalPoint cp;
    cp.mmsi = static_cast<stream::Mmsi>(1000 + i);
    cp.pos = centers[static_cast<size_t>(i) % centers.size()];
    cp.tau = 1 + i;
    cp.flags = tracker::kFirst | tracker::kStopStart;
    out.push_back(cp);
  }
  // Active vessel: cycles inside one area — stop episodes with slow-motion
  // and communication-gap episodes interleaved, one critical point a minute.
  const geo::GeoPoint home = centers[0];
  const stream::Mmsi active = 7;
  int phase = 0;
  for (Timestamp t = 5 * kMinute; t <= horizon; t += kMinute, ++phase) {
    tracker::CriticalPoint cp;
    cp.mmsi = active;
    cp.pos = geo::GeoPoint{home.lon + (phase % 3) * 1e-4,
                           home.lat + (phase % 5) * 1e-4};
    cp.tau = t;
    switch (phase % 6) {
      case 0: cp.flags = tracker::kStopStart; break;
      case 1: cp.flags = tracker::kStopEnd; cp.duration = kMinute; break;
      case 2: cp.flags = tracker::kSlowMotionStart; break;
      case 3: cp.flags = tracker::kSlowMotionEnd; cp.duration = kMinute; break;
      case 4: cp.flags = tracker::kGapStart; break;
      default:
        cp.flags = tracker::kGapEnd | tracker::kTurn;
        cp.duration = kMinute;
        break;
    }
    out.push_back(cp);
  }
  std::sort(out.begin(), out.end(),
            [](const tracker::CriticalPoint& a,
               const tracker::CriticalPoint& b) { return a.tau < b.tau; });
  return out;
}

void RunSkewedMaritimeDifferential(bool spatial_facts, bool snapshot_midway) {
  const sim::World world = sim::BuildWorld(11);
  const Duration horizon = 12 * kHour;
  const std::vector<tracker::CriticalPoint> criticals =
      MakeSkewedCriticals(world, /*idle_vessels=*/250, horizon);
  const stream::WindowSpec window{30 * kMinute, 5 * kMinute};

  surveillance::RecognizerConfig cn;
  cn.window = window;
  cn.ce.use_spatial_facts = spatial_facts;
  surveillance::RecognizerConfig cs = cn;
  cs.incremental = true;  // scoped_dirty defaults to true
  surveillance::RecognizerConfig cf = cs;
  cf.scoped_dirty = false;
  surveillance::RecognizerConfig ca = cn;
  ca.engine = surveillance::EngineMode::kAuto;  // ω = 6β → incremental

  surveillance::CERecognizer naive(&world.knowledge, cn);
  surveillance::CERecognizer scoped(&world.knowledge, cs);
  surveillance::CERecognizer floor(&world.knowledge, cf);
  surveillance::CERecognizer aut(&world.knowledge, ca);
  std::unique_ptr<surveillance::CERecognizer> restored;

  const Timestamp snapshot_q = snapshot_midway ? 6 * kHour : -1;
  size_t cursor = 0;
  std::vector<tracker::CriticalPoint> held;
  size_t slides = 0;
  for (Timestamp q = window.slide; q <= horizon; q += window.slide) {
    // Delayed MEs: every 7th point of the previous slide arrives only now,
    // out of order relative to the fresh batch.
    std::vector<tracker::CriticalPoint> batch = std::move(held);
    held.clear();
    while (cursor < criticals.size() && criticals[cursor].tau <= q) {
      if (cursor % 7 == 6) {
        held.push_back(criticals[cursor]);
      } else {
        batch.push_back(criticals[cursor]);
      }
      ++cursor;
    }
    for (const auto& cp : batch) {
      naive.Feed(cp);
      scoped.Feed(cp);
      floor.Feed(cp);
      aut.Feed(cp);
      if (restored != nullptr) restored->Feed(cp);
    }
    if (q == snapshot_q) {
      // Snapshot with this slide's batch already fed: the engine's dirty
      // marks (including the unsorted pending appends of the batch-mark
      // path) are serialized and must replay bit-identically.
      snapshot::Writer w;
      scoped.SaveTo(w);
      restored =
          std::make_unique<surveillance::CERecognizer>(&world.knowledge, cs);
      snapshot::Reader r(w.bytes());
      ASSERT_TRUE(restored->RestoreFrom(r).ok());
    }
    const rtec::RecognitionResult rn = naive.Recognize(q);
    const rtec::RecognitionResult rs = scoped.Recognize(q);
    const rtec::RecognitionResult rf = floor.Recognize(q);
    const rtec::RecognitionResult ra = aut.Recognize(q);
    ASSERT_TRUE(rn == rs) << "scoped diverged at q=" << q
                          << " (spatial_facts=" << spatial_facts << ")";
    ASSERT_TRUE(rn == rf) << "unscoped diverged at q=" << q;
    ASSERT_TRUE(rn == ra) << "auto diverged at q=" << q;
    if (restored != nullptr) {
      const rtec::RecognitionResult rr = restored->Recognize(q);
      ASSERT_TRUE(rn == rr) << "restored scoped diverged at q=" << q;
    }
    ++slides;
  }
  EXPECT_GT(slides, 140u);

  // Counter cross-check: the scoped engine narrowed cross-key regen spans
  // below the fleet floor; with scoping off every dirty cross-key evaluation
  // fell back to the floor and none narrowed.
  EXPECT_GT(scoped.engine().cache_stats().spans_narrowed, 0u);
  EXPECT_EQ(floor.engine().cache_stats().spans_narrowed, 0u);
  EXPECT_GT(floor.engine().cache_stats().fleet_floor_hits, 0u);
  EXPECT_EQ(naive.engine().cache_stats().spans_narrowed, 0u);
  if (snapshot_midway) {
    ASSERT_NE(restored, nullptr);
    EXPECT_GT(restored->engine().cache_stats().spans_narrowed, 0u);
  }
}

TEST(MaritimeScopedDirtyTest, SkewedFleetOnDemandBitIdentical) {
  RunSkewedMaritimeDifferential(/*spatial_facts=*/false,
                                /*snapshot_midway=*/false);
}

TEST(MaritimeScopedDirtyTest, SkewedFleetSpatialFactsSnapshotBitIdentical) {
  RunSkewedMaritimeDifferential(/*spatial_facts=*/true,
                                /*snapshot_midway=*/true);
}

}  // namespace
}  // namespace maritime::rtec
