#include <gtest/gtest.h>

#include "mod/hermes.h"
#include "mod/store.h"
#include "mod/trips.h"

namespace maritime::mod {
namespace {

const geo::GeoPoint kPortA{24.0, 37.0};
const geo::GeoPoint kPortB{25.0, 38.0};
const geo::GeoPoint kMidway{24.5, 37.5};

surveillance::KnowledgeBase MakeKb() {
  surveillance::KnowledgeBase kb(1000.0);
  surveillance::AreaInfo a;
  a.id = 1000;
  a.name = "alpha";
  a.kind = surveillance::AreaKind::kPort;
  a.polygon = geo::Polygon::RegularPolygon(kPortA, 800.0, 10);
  kb.AddArea(a);
  a = surveillance::AreaInfo();
  a.id = 1001;
  a.name = "beta";
  a.kind = surveillance::AreaKind::kPort;
  a.polygon = geo::Polygon::RegularPolygon(kPortB, 800.0, 10);
  kb.AddArea(a);
  return kb;
}

tracker::CriticalPoint Cp(stream::Mmsi mmsi, geo::GeoPoint pos, Timestamp tau,
                          uint32_t flags = 0) {
  tracker::CriticalPoint cp;
  cp.mmsi = mmsi;
  cp.pos = pos;
  cp.tau = tau;
  cp.flags = flags;
  return cp;
}

/// A voyage A -> B as critical points: departure stop at A, two en-route
/// points, arrival stop at B.
std::vector<tracker::CriticalPoint> VoyageAtoB(stream::Mmsi mmsi,
                                               Timestamp start) {
  return {
      Cp(mmsi, kPortA, start, tracker::kStopEnd),
      Cp(mmsi, geo::Interpolate(kPortA, kMidway, 0.9), start + kHour,
         tracker::kTurn),
      Cp(mmsi, geo::Interpolate(kMidway, kPortB, 0.5), start + 2 * kHour,
         tracker::kSpeedChange),
      Cp(mmsi, kPortB, start + 3 * kHour, tracker::kStopEnd),
  };
}

/// The return voyage B -> A.
std::vector<tracker::CriticalPoint> VoyageBtoA(stream::Mmsi mmsi,
                                               Timestamp start) {
  return {
      Cp(mmsi, kPortB, start, tracker::kStopEnd),
      Cp(mmsi, geo::Interpolate(kPortB, kMidway, 0.9), start + kHour,
         tracker::kTurn),
      Cp(mmsi, geo::Interpolate(kMidway, kPortA, 0.5), start + 2 * kHour,
         tracker::kSpeedChange),
      Cp(mmsi, kPortA, start + 3 * kHour, tracker::kStopEnd),
  };
}

TEST(TripBuilderTest, SegmentsBetweenPortStops) {
  const auto kb = MakeKb();
  TripBuilder builder(&kb);
  std::vector<Trip> trips;
  for (const auto& cp : VoyageAtoB(7, 0)) builder.Add(cp, &trips);
  ASSERT_EQ(trips.size(), 1u);
  const Trip& t = trips[0];
  EXPECT_EQ(t.mmsi, 7u);
  EXPECT_EQ(t.origin_port, 1000);
  EXPECT_EQ(t.destination_port, 1001);
  EXPECT_EQ(t.start_tau, 0);
  EXPECT_EQ(t.end_tau, 3 * kHour);
  EXPECT_EQ(t.points.size(), 4u);
  EXPECT_GT(t.distance_m, 100000.0);  // A-B is well over 100 km
}

TEST(TripBuilderTest, UnknownOriginForVesselFirstSeenAtSea) {
  // "Origin port O may remain unknown, because the ship might have been on
  // the move when the AIS base stations started receiving its signals."
  const auto kb = MakeKb();
  TripBuilder builder(&kb);
  std::vector<Trip> trips;
  builder.Add(Cp(7, kMidway, 0, tracker::kFirst), &trips);
  builder.Add(Cp(7, kPortB, kHour, tracker::kStopEnd), &trips);
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0].origin_port, -1);
  EXPECT_EQ(trips[0].destination_port, 1001);
}

TEST(TripBuilderTest, StopOutsidePortsDoesNotSegment) {
  const auto kb = MakeKb();
  TripBuilder builder(&kb);
  std::vector<Trip> trips;
  builder.Add(Cp(7, kPortA, 0, tracker::kStopEnd), &trips);
  builder.Add(Cp(7, kMidway, kHour, tracker::kStopEnd), &trips);  // at sea
  EXPECT_TRUE(trips.empty());
  EXPECT_EQ(builder.pending_points(), 2u);
}

TEST(TripBuilderTest, RepeatedPortStopsDoNotCreateDegenerateTrips) {
  const auto kb = MakeKb();
  TripBuilder builder(&kb, /*min_trip_distance_m=*/1000.0);
  std::vector<Trip> trips;
  // Three stop-ends while moored in port Alpha (tiny displacements).
  builder.Add(Cp(7, kPortA, 0, tracker::kStopEnd), &trips);
  builder.Add(Cp(7, geo::DestinationPoint(kPortA, 10.0, 30.0), kHour,
                 tracker::kStopEnd),
              &trips);
  builder.Add(Cp(7, geo::DestinationPoint(kPortA, 200.0, 40.0), 2 * kHour,
                 tracker::kStopEnd),
              &trips);
  EXPECT_TRUE(trips.empty());
}

TEST(TripBuilderTest, OpenEndedTripStaysPending) {
  const auto kb = MakeKb();
  TripBuilder builder(&kb);
  std::vector<Trip> trips;
  builder.Add(Cp(7, kPortA, 0, tracker::kStopEnd), &trips);
  builder.Add(Cp(7, kMidway, kHour, tracker::kTurn), &trips);
  EXPECT_TRUE(trips.empty());
  EXPECT_EQ(builder.open_segments(), 1u);
  EXPECT_EQ(builder.pending_points(), 2u);
}

TEST(TrajectoryStoreTest, IndexesAndQueries) {
  const auto kb = MakeKb();
  TripBuilder builder(&kb);
  TrajectoryStore store;
  std::vector<Trip> trips;
  for (const auto& cp : VoyageAtoB(7, 0)) builder.Add(cp, &trips);
  for (const auto& cp : VoyageAtoB(8, kHour)) builder.Add(cp, &trips);
  for (auto& t : trips) store.AddTrip(std::move(t));
  ASSERT_EQ(store.trip_count(), 2u);

  EXPECT_EQ(store.TripsOfVessel(7).size(), 1u);
  EXPECT_EQ(store.TripsOfVessel(9).size(), 0u);
  EXPECT_EQ(store.TripsTo(1001).size(), 2u);
  EXPECT_EQ(store.TripsTo(1000).size(), 0u);

  EXPECT_EQ(store.TripsOverlapping(0, 30 * kMinute).size(), 1u);
  EXPECT_EQ(store.TripsOverlapping(0, 5 * kHour).size(), 2u);
  EXPECT_EQ(store.TripsOverlapping(10 * kHour, 20 * kHour).size(), 0u);
}

TEST(TrajectoryStoreTest, TripPointersSurviveLaterInsertions) {
  // Regression: trips_ was a std::vector, so pointers handed out by
  // TripsOfVessel/TripsTo dangled as soon as a later AddTrip reallocated the
  // backing storage (ASan catches the stale read). The deque-backed store
  // must keep them valid for the lifetime of the store.
  const auto kb = MakeKb();
  TripBuilder builder(&kb);
  TrajectoryStore store;
  std::vector<Trip> trips;
  for (const auto& cp : VoyageAtoB(7, 0)) builder.Add(cp, &trips);
  for (auto& t : trips) store.AddTrip(std::move(t));
  trips.clear();

  const std::vector<const Trip*> early = store.TripsOfVessel(7);
  ASSERT_EQ(early.size(), 1u);
  const Trip* held = early[0];
  const Timestamp held_end = held->end_tau;

  // Enough insertions to force any vector-backed store through several
  // reallocations.
  for (stream::Mmsi m = 100; m < 200; ++m) {
    for (const auto& cp : VoyageAtoB(m, static_cast<Timestamp>(m) * kHour)) {
      builder.Add(cp, &trips);
    }
  }
  for (auto& t : trips) store.AddTrip(std::move(t));
  ASSERT_GT(store.trip_count(), 100u);

  EXPECT_EQ(held->mmsi, 7u);
  EXPECT_EQ(held->end_tau, held_end);
  EXPECT_EQ(held, store.TripsOfVessel(7)[0]);
}

TEST(TrajectoryStoreTest, OriginDestinationMatrix) {
  const auto kb = MakeKb();
  TripBuilder builder(&kb);
  TrajectoryStore store;
  std::vector<Trip> trips;
  for (const auto& cp : VoyageAtoB(7, 0)) builder.Add(cp, &trips);
  for (const auto& cp : VoyageAtoB(8, 0)) builder.Add(cp, &trips);
  for (auto& t : trips) store.AddTrip(std::move(t));
  const auto od = store.OriginDestinationMatrix();
  ASSERT_EQ(od.size(), 1u);
  const OdCell& cell = od.at({1000, 1001});
  EXPECT_EQ(cell.trips, 2u);
  EXPECT_EQ(cell.AvgTravelTime(), 3 * kHour);
  EXPECT_GT(cell.AvgDistanceM(), 100000.0);
}

TEST(TrajectoryStoreTest, StatisticsTable4Shape) {
  const auto kb = MakeKb();
  TripBuilder builder(&kb);
  TrajectoryStore store;
  std::vector<Trip> trips;
  for (const auto& cp : VoyageAtoB(7, 0)) builder.Add(cp, &trips);
  for (const auto& cp : VoyageBtoA(7, 6 * kHour)) builder.Add(cp, &trips);
  for (const auto& cp : VoyageAtoB(8, 0)) builder.Add(cp, &trips);
  for (auto& t : trips) store.AddTrip(std::move(t));
  const TripStatistics s = store.ComputeStatistics(5);
  EXPECT_EQ(s.trip_count, 3u);
  EXPECT_EQ(s.staged_points, 5u);
  EXPECT_EQ(s.points_in_trips, 12u);
  EXPECT_NEAR(s.avg_trips_per_vessel, 1.5, 1e-9);
  EXPECT_NEAR(s.avg_points_per_trip, 4.0, 1e-9);
  EXPECT_EQ(s.avg_travel_time, 3 * kHour);
  const std::string text = s.ToString();
  EXPECT_NE(text.find("Number of trips between ports"), std::string::npos);
  EXPECT_NE(text.find("Average travel time per trip"), std::string::npos);
}

TEST(TripStatisticsTest, EmptyStore) {
  TrajectoryStore store;
  const TripStatistics s = store.ComputeStatistics(0);
  EXPECT_EQ(s.trip_count, 0u);
  EXPECT_EQ(s.avg_points_per_trip, 0.0);
  EXPECT_EQ(s.avg_travel_time, 0);
}

TEST(HermesArchiverTest, PhasesMoveDataThrough) {
  const auto kb = MakeKb();
  HermesArchiver archiver(&kb);
  archiver.StageBatch(VoyageAtoB(7, 0));
  EXPECT_EQ(archiver.pending_points(), 4u);
  EXPECT_EQ(archiver.Reconstruct(), 1u);
  EXPECT_EQ(archiver.store().trip_count(), 0u) << "not loaded yet";
  EXPECT_EQ(archiver.Load(), 1u);
  EXPECT_EQ(archiver.store().trip_count(), 1u);
  // The arrival stop stays pending as the anchor of the next segment.
  EXPECT_EQ(archiver.pending_points(), 1u);
  EXPECT_EQ(archiver.timings().batches, 1u);
}

TEST(HermesArchiverTest, IncrementalBatches) {
  const auto kb = MakeKb();
  HermesArchiver archiver(&kb);
  const auto voyage = VoyageAtoB(7, 0);
  // Deliver the voyage in two delta batches, as window eviction would.
  archiver.ArchiveBatch({voyage[0], voyage[1]});
  EXPECT_EQ(archiver.store().trip_count(), 0u);
  archiver.ArchiveBatch({voyage[2], voyage[3]});
  EXPECT_EQ(archiver.store().trip_count(), 1u);
  const TripStatistics s = archiver.Statistics();
  EXPECT_EQ(s.trip_count, 1u);
  EXPECT_EQ(s.points_in_trips, 4u);
}

}  // namespace
}  // namespace maritime::mod
