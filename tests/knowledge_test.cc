#include <gtest/gtest.h>

#include "maritime/knowledge.h"
#include "maritime/me_stream.h"

namespace maritime::surveillance {
namespace {

const geo::GeoPoint kCenterA{24.0, 37.0};
const geo::GeoPoint kCenterB{25.5, 38.5};

KnowledgeBase MakeKb() {
  KnowledgeBase kb(1000.0);
  AreaInfo park;
  park.id = 1;
  park.name = "park";
  park.kind = AreaKind::kProtected;
  park.polygon = geo::Polygon::RegularPolygon(kCenterA, 3000.0, 8);
  kb.AddArea(park);

  AreaInfo shoal;
  shoal.id = 2;
  shoal.name = "shoal";
  shoal.kind = AreaKind::kShallow;
  shoal.polygon = geo::Polygon::RegularPolygon(kCenterB, 2000.0, 8);
  shoal.depth_m = 4.0;
  kb.AddArea(shoal);

  AreaInfo port;
  port.id = 1000;
  port.name = "port";
  port.kind = AreaKind::kPort;
  port.polygon =
      geo::Polygon::RegularPolygon(geo::GeoPoint{24.5, 37.5}, 700.0, 10);
  kb.AddArea(port);

  VesselInfo trawler;
  trawler.mmsi = 100;
  trawler.type = VesselType::kFishing;
  trawler.fishing_gear = true;
  trawler.draft_m = 4.0;
  kb.AddVessel(trawler);

  VesselInfo tanker;
  tanker.mmsi = 200;
  tanker.type = VesselType::kTanker;
  tanker.draft_m = 12.0;
  kb.AddVessel(tanker);

  VesselInfo dinghy;
  dinghy.mmsi = 300;
  dinghy.type = VesselType::kPleasure;
  dinghy.draft_m = 1.5;
  kb.AddVessel(dinghy);
  return kb;
}

TEST(KnowledgeTest, FindAreaAndVessel) {
  const KnowledgeBase kb = MakeKb();
  ASSERT_NE(kb.FindArea(1), nullptr);
  EXPECT_EQ(kb.FindArea(1)->name, "park");
  EXPECT_EQ(kb.FindArea(99), nullptr);
  ASSERT_NE(kb.FindVessel(100), nullptr);
  EXPECT_EQ(kb.FindVessel(100)->type, VesselType::kFishing);
  EXPECT_EQ(kb.FindVessel(999), nullptr);
  EXPECT_EQ(kb.vessel_count(), 3u);
}

TEST(KnowledgeTest, ClosePredicate) {
  const KnowledgeBase kb = MakeKb();
  EXPECT_TRUE(kb.Close(kCenterA, 1)) << "inside is close";
  // 500 m outside the 3 km polygon: within the 1000 m threshold.
  EXPECT_TRUE(kb.Close(geo::DestinationPoint(kCenterA, 0.0, 3500.0), 1));
  // 5 km outside: not close.
  EXPECT_FALSE(kb.Close(geo::DestinationPoint(kCenterA, 0.0, 8000.0), 1));
  EXPECT_FALSE(kb.Close(kCenterA, 99));
}

TEST(KnowledgeTest, AreasCloseToFiltersKind) {
  const KnowledgeBase kb = MakeKb();
  const auto all = kb.AreasCloseTo(kCenterA);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], 1);
  EXPECT_TRUE(kb.AreasCloseTo(kCenterA, AreaKind::kShallow).empty());
  const auto shallow = kb.AreasCloseTo(kCenterB, AreaKind::kShallow);
  ASSERT_EQ(shallow.size(), 1u);
  EXPECT_EQ(shallow[0], 2);
}

TEST(KnowledgeTest, FishingPredicate) {
  const KnowledgeBase kb = MakeKb();
  EXPECT_TRUE(kb.IsFishing(100));
  EXPECT_FALSE(kb.IsFishing(200));
  EXPECT_FALSE(kb.IsFishing(12345)) << "unknown vessels are not fishing";
}

TEST(KnowledgeTest, ShallowPredicateUsesDraft) {
  const KnowledgeBase kb = MakeKb();
  // Area 2 is 4 m deep. Tanker draft 12 m: too shallow. Dinghy draft 1.5 m
  // (+1 m clearance = 2.5 m): safe.
  EXPECT_TRUE(kb.IsShallowFor(2, 200));
  EXPECT_FALSE(kb.IsShallowFor(2, 300));
  // Trawler draft 4.0 + 1.0 clearance > 4.0: too shallow.
  EXPECT_TRUE(kb.IsShallowFor(2, 100));
  // A protected area is never "shallow".
  EXPECT_FALSE(kb.IsShallowFor(1, 200));
  // Unknown vessel: conservative 3 m draft + 1 m clearance = 4 m, not < 4.
  EXPECT_FALSE(kb.IsShallowFor(2, 777));
}

TEST(KnowledgeTest, PortContaining) {
  const KnowledgeBase kb = MakeKb();
  const AreaInfo* port = kb.PortContaining(geo::GeoPoint{24.5, 37.5});
  ASSERT_NE(port, nullptr);
  EXPECT_EQ(port->id, 1000);
  EXPECT_EQ(kb.PortContaining(kCenterA), nullptr)
      << "the protected area is not a port";
  EXPECT_EQ(kb.PortContaining(geo::GeoPoint{20.0, 30.0}), nullptr);
}

TEST(KnowledgeTest, RestrictedKeepsVesselsAndSelectedAreas) {
  const KnowledgeBase kb = MakeKb();
  const KnowledgeBase west = kb.Restricted({1});
  EXPECT_EQ(west.areas().size(), 1u);
  EXPECT_NE(west.FindArea(1), nullptr);
  EXPECT_EQ(west.FindArea(2), nullptr);
  EXPECT_EQ(west.vessel_count(), 3u);
  EXPECT_TRUE(west.IsFishing(100));
}

TEST(KnowledgeTest, KindAndTypeNames) {
  EXPECT_EQ(AreaKindName(AreaKind::kProtected), "protected");
  EXPECT_EQ(AreaKindName(AreaKind::kForbiddenFishing), "forbidden_fishing");
  EXPECT_EQ(AreaKindName(AreaKind::kShallow), "shallow");
  EXPECT_EQ(AreaKindName(AreaKind::kPort), "port");
  EXPECT_EQ(VesselTypeName(VesselType::kFishing), "fishing");
  EXPECT_EQ(VesselTypeName(VesselType::kTanker), "tanker");
}

TEST(SpatialFactTableTest, LatestGroupInForce) {
  SpatialFactTable t;
  t.AddFactGroup(100, 10, {1, 2});
  t.AddFactGroup(100, 50, {2});
  EXPECT_TRUE(t.IsCloseAt(100, 1, 10));
  EXPECT_TRUE(t.IsCloseAt(100, 1, 49)) << "group at 10 in force until 50";
  EXPECT_FALSE(t.IsCloseAt(100, 1, 50)) << "superseded by the group at 50";
  EXPECT_TRUE(t.IsCloseAt(100, 2, 50));
  EXPECT_FALSE(t.IsCloseAt(100, 1, 5)) << "no facts before the first group";
  EXPECT_FALSE(t.IsCloseAt(999, 1, 50));
  EXPECT_EQ(t.AreasCloseAt(100, 60), std::vector<int32_t>{2});
  EXPECT_EQ(t.fact_count(), 3u);
}

TEST(SpatialFactTableTest, DelayedGroupInsertedInOrder) {
  SpatialFactTable t;
  t.AddFactGroup(100, 50, {2});
  t.AddFactGroup(100, 10, {1});  // arrives late
  EXPECT_TRUE(t.IsCloseAt(100, 1, 20));
  EXPECT_TRUE(t.IsCloseAt(100, 2, 60));
}

TEST(SpatialFactTableTest, PurgeKeepsLatestBoundaryGroup) {
  SpatialFactTable t;
  t.AddFactGroup(100, 5, {3});
  t.AddFactGroup(100, 10, {1});
  t.AddFactGroup(100, 50, {2});
  // The group at t=5 is shadowed by the boundary group at t=10 for every
  // query after the cutoff, so only it is dropped; answers at t > 10 are
  // unchanged by the purge (last-known-state inertia).
  t.PurgeBefore(10);
  EXPECT_EQ(t.fact_count(), 2u);
  EXPECT_FALSE(t.IsCloseAt(100, 3, 20));
  EXPECT_TRUE(t.IsCloseAt(100, 1, 20));
  EXPECT_TRUE(t.IsCloseAt(100, 2, 60));
  // Purging past every group retains the single latest one: the vessel's
  // last known spatial state stays in force.
  t.PurgeBefore(100);
  EXPECT_EQ(t.fact_count(), 1u);
  EXPECT_EQ(t.AreasCloseAt(100, 200), std::vector<int32_t>{2});
}

}  // namespace
}  // namespace maritime::surveillance
