#include "rtec/timeline.h"

#include <algorithm>
#include <cassert>

#include "common/check.h"

namespace maritime::rtec {
namespace {

struct Marker {
  Timestamp t;
  bool is_termination;
  Value value;
};

struct RawEpisode {
  Value value;
  Timestamp since;
  Timestamp till;
  bool carried;   // Seeded by inertia at the window boundary (no start event).
  bool ongoing;   // Still open at the query time (no end event).
};

}  // namespace

void FluentTimeline::AppendValue(Value v, IntervalSpan intervals,
                                 std::span<const Timestamp> starts,
                                 std::span<const Timestamp> ends) {
  MARITIME_DCHECK_MSG(slices.empty() || slices.back().value < v,
                      "timeline values must be appended in ascending order");
  ValueSlice s;
  s.value = v;
  s.ival_begin = static_cast<uint32_t>(interval_store.size());
  interval_store.insert(interval_store.end(), intervals.begin(),
                        intervals.end());
  s.ival_end = static_cast<uint32_t>(interval_store.size());
  s.start_begin = static_cast<uint32_t>(time_store.size());
  time_store.insert(time_store.end(), starts.begin(), starts.end());
  s.start_end = static_cast<uint32_t>(time_store.size());
  s.end_begin = static_cast<uint32_t>(time_store.size());
  time_store.insert(time_store.end(), ends.begin(), ends.end());
  s.end_end = static_cast<uint32_t>(time_store.size());
  slices.push_back(s);
}

void FluentTimeline::CopyFrom(const FluentTimeline& src) {
  // Copy-assign through the non-propagating allocator: contents land in this
  // object's existing backing (and capacity, when sufficient). When the
  // destination must grow, grow geometrically — a key's history lengthens a
  // little every slide while the window fills, and exact-fit growth would
  // reallocate each of those slides.
  const auto assign = [](auto& dst, const auto& src_store) {
    if (dst.capacity() < src_store.size()) {
      dst.reserve(std::max(src_store.size(), 2 * dst.capacity()));
    }
    dst.assign(src_store.begin(), src_store.end());
  };
  assign(slices, src.slices);
  assign(interval_store, src.interval_store);
  assign(time_store, src.time_store);
  open_value = src.open_value;
}

MARITIME_COMMIT_BOUNDARY void FluentTimeline::FastForwardWindow(
    std::optional<Value> carried_value, Timestamp window_start,
    Timestamp query_time) {
  if (carried_value.has_value()) {
    for (ValueSlice& s : slices) {
      if (s.value != *carried_value) continue;
      if (s.ival_begin < s.ival_end) {
        // The carried episode is the chronologically first interval of its
        // value (it opens at the previous window start; every other interval
        // opens at an in-window initiation point).
        Interval& iv = interval_store[s.ival_begin];
        if (iv.since < window_start) iv.since = window_start;
      }
      break;
    }
  }
  if (open_value.has_value()) {
    for (ValueSlice& s : slices) {
      if (s.value != *open_value) continue;
      if (s.ival_begin < s.ival_end) {
        // The open episode is the chronologically last interval of its value
        // (it was clipped at the previous query time; with no evidence point
        // on that edge, nothing can end later).
        Interval& iv = interval_store[s.ival_end - 1];
        if (iv.till < query_time) iv.till = query_time;
      }
      break;
    }
  }
}

const FluentTimeline::ValueSlice* FluentTimeline::FindSlice(Value v) const {
  // The per-key value set is tiny (usually 1); a linear scan beats a binary
  // search on spans this short.
  for (const ValueSlice& s : slices) {
    if (s.value == v) return &s;
    if (s.value > v) break;
  }
  return nullptr;
}

IntervalSpan FluentTimeline::IntervalsFor(Value v) const {
  const ValueSlice* s = FindSlice(v);
  return s == nullptr ? IntervalSpan() : IntervalsAt(*s);
}

std::span<const Timestamp> FluentTimeline::StartsFor(Value v) const {
  const ValueSlice* s = FindSlice(v);
  return s == nullptr ? std::span<const Timestamp>() : StartsAt(*s);
}

std::span<const Timestamp> FluentTimeline::EndsFor(Value v) const {
  const ValueSlice* s = FindSlice(v);
  return s == nullptr ? std::span<const Timestamp>() : EndsAt(*s);
}

bool FluentTimeline::Holds(Value v, Timestamp t) const {
  return HoldsAt(IntervalsFor(v), t);
}

bool FluentTimeline::HoldsRight(Value v, Timestamp t) const {
  return HoldsRightOf(IntervalsFor(v), t);
}

std::optional<Value> FluentTimeline::ValueAt(Timestamp t) const {
  for (const ValueSlice& s : slices) {
    if (HoldsAt(IntervalsAt(s), t)) return s.value;
  }
  return std::nullopt;
}

std::optional<Value> FluentTimeline::ValueRightOf(Timestamp t) const {
  for (const ValueSlice& s : slices) {
    if (HoldsRightOf(IntervalsAt(s), t)) return s.value;
  }
  return std::nullopt;
}

bool operator==(const FluentTimeline& a, const FluentTimeline& b) {
  if (a.open_value != b.open_value) return false;
  if (a.slices.size() != b.slices.size()) return false;
  for (size_t i = 0; i < a.slices.size(); ++i) {
    const auto& sa = a.slices[i];
    const auto& sb = b.slices[i];
    if (sa.value != sb.value) return false;
    if (!std::ranges::equal(a.IntervalsAt(sa), b.IntervalsAt(sb))) return false;
    if (!std::ranges::equal(a.StartsAt(sa), b.StartsAt(sb))) return false;
    if (!std::ranges::equal(a.EndsAt(sa), b.EndsAt(sb))) return false;
  }
  return true;
}

void ComputeSimpleFluentInto(std::span<const ValuedPoint> initiations,
                             std::span<const ValuedPoint> terminations,
                             std::optional<Value> carried_value,
                             Timestamp window_start, Timestamp query_time,
                             common::Arena* scratch, FluentTimeline* out) {
  assert(window_start <= query_time);
  common::ArenaVector<Marker> markers{common::ArenaAllocator<Marker>(scratch)};
  markers.reserve(initiations.size() + terminations.size());
  for (const auto& p : initiations) {
    if (p.t > window_start && p.t <= query_time) {
      markers.push_back(Marker{p.t, false, p.value});
    }
  }
  for (const auto& p : terminations) {
    if (p.t > window_start && p.t <= query_time) {
      markers.push_back(Marker{p.t, true, p.value});
    }
  }
  std::sort(markers.begin(), markers.end(),
            [](const Marker& a, const Marker& b) {
              if (a.t != b.t) return a.t < b.t;
              // Terminations sort before initiations at the same time-point
              // so a value broken at t can be re-initiated at t.
              if (a.is_termination != b.is_termination) return a.is_termination;
              return a.value < b.value;
            });

  common::ArenaVector<RawEpisode> raw{
      common::ArenaAllocator<RawEpisode>(scratch)};
  bool has_current = false;
  Value current = 0;
  Timestamp open_since = window_start;
  bool open_carried = false;
  if (carried_value.has_value()) {
    has_current = true;
    current = *carried_value;
    open_since = window_start;
    open_carried = true;
  }

  size_t i = 0;
  while (i < markers.size()) {
    const Timestamp t = markers[i].t;
    // Gather this time-point's group.
    bool terminates_current = false;
    bool initiates_other = false;
    bool has_min_init = false;
    Value min_init = 0;
    for (size_t j = i; j < markers.size() && markers[j].t == t; ++j) {
      const Marker& m = markers[j];
      if (m.is_termination) {
        if (has_current && m.value == current) {
          terminates_current = true;
        }
      } else {
        if (!has_min_init || m.value < min_init) {
          min_init = m.value;
          has_min_init = true;
        }
        if (has_current && m.value != current) initiates_other = true;
      }
    }
    if (has_current && (terminates_current || initiates_other)) {
      raw.push_back(
          RawEpisode{current, open_since, t, open_carried, false});
      has_current = false;
    }
    if (!has_current && has_min_init) {
      has_current = true;
      current = min_init;
      open_since = t;
      open_carried = false;
    }
    while (i < markers.size() && markers[i].t == t) ++i;
  }
  if (has_current) {
    raw.push_back(RawEpisode{current, open_since, query_time, open_carried,
                             true});
  }

  // Coalesce same-value episodes that touch (a break immediately followed by
  // a re-initiation at the same time-point is not a real interval boundary).
  common::ArenaVector<RawEpisode> merged{
      common::ArenaAllocator<RawEpisode>(scratch)};
  for (const RawEpisode& e : raw) {
    if (!merged.empty() && merged.back().value == e.value &&
        merged.back().till == e.since) {
      merged.back().till = e.till;
      merged.back().ongoing = e.ongoing;
      continue;
    }
    merged.push_back(e);
  }

  out->slices.clear();
  out->interval_store.clear();
  out->time_store.clear();
  out->open_value.reset();
  // Distinct values, ascending — the slice table's order. The per-key value
  // set is tiny, so the value×episode regrouping below is effectively linear.
  common::ArenaVector<Value> values{common::ArenaAllocator<Value>(scratch)};
  Timestamp prev_till = window_start;
  for (const RawEpisode& e : merged) {
    if (e.ongoing) {
      out->open_value = e.value;
    }
    if (e.since >= e.till) continue;  // An initiation exactly at the query
                                      // time has no in-window points yet.
    // Amalgamation invariant: episodes advance monotonically, so a fluent
    // never holds two values at one time-point (broken rules (1)–(2)).
    MARITIME_DCHECK_MSG(e.since >= prev_till,
                        "overlapping episodes after amalgamation");
    prev_till = e.till;
    if (std::find(values.begin(), values.end(), e.value) == values.end()) {
      values.push_back(e.value);
    }
  }
  std::sort(values.begin(), values.end());
  for (const Value v : values) {
    FluentTimeline::ValueSlice s;
    s.value = v;
    s.ival_begin = static_cast<uint32_t>(out->interval_store.size());
    s.start_begin = static_cast<uint32_t>(out->time_store.size());
    // A slice's start points precede its end points in the shared time store,
    // so starts and ends are filled in two passes over this value's episodes.
    for (const RawEpisode& e : merged) {
      if (e.value != v || e.since >= e.till) continue;
      out->interval_store.push_back(Interval{e.since, e.till});
      if (!e.carried) out->time_store.push_back(e.since);
    }
    s.ival_end = static_cast<uint32_t>(out->interval_store.size());
    s.start_end = static_cast<uint32_t>(out->time_store.size());
    s.end_begin = s.start_end;
    for (const RawEpisode& e : merged) {
      if (e.value != v || e.since >= e.till) continue;
      if (!e.ongoing) out->time_store.push_back(e.till);
    }
    s.end_end = static_cast<uint32_t>(out->time_store.size());
    out->slices.push_back(s);
  }
#if MARITIME_DCHECKS_ENABLED
  // Per value: maximal intervals sorted, disjoint, non-adjacent, and the
  // start/end point lists sorted — the properties every downstream interval
  // operation (union/intersect/complement) assumes.
  for (const auto& s : out->slices) {
    MARITIME_DCHECK_MSG(IsNormalized(out->IntervalsAt(s)),
                        "fluent interval list not sorted/disjoint/maximal");
    MARITIME_DCHECK(std::ranges::is_sorted(out->StartsAt(s)));
    MARITIME_DCHECK(std::ranges::is_sorted(out->EndsAt(s)));
  }
#endif
}

// Escape is sound: the returned timeline is default-constructed (heap-backed).
MARITIME_ARENA_ESCAPE_OK FluentTimeline ComputeSimpleFluent(
    const FluentEvidence& evidence, Timestamp window_start,
    Timestamp query_time) {
  FluentTimeline out;
  ComputeSimpleFluentInto(evidence.initiations, evidence.terminations,
                          evidence.carried_value, window_start, query_time,
                          /*scratch=*/nullptr, &out);
  return out;
}

void MergeCachedPointsInto(std::span<const ValuedPoint> cached,
                           std::span<const ValuedPoint> fresh,
                           Timestamp window_start, Timestamp regen_from,
                           PointVec* out) {
  const auto needs_eval = [&](Timestamp t) { return t >= regen_from; };
  out->clear();
  out->reserve(cached.size() + fresh.size());
  for (const ValuedPoint& p : cached) {
    if (p.t > window_start && !needs_eval(p.t)) out->push_back(p);
  }
  for (const ValuedPoint& p : fresh) {
    // Points a rule generated outside its regeneration region are duplicates
    // of the cached slice (rules are deterministic); dropping them instead of
    // deduplicating keeps hint-ignoring rules exactly correct.
    if (p.t > window_start && needs_eval(p.t)) out->push_back(p);
  }
}

std::vector<ValuedPoint> MergeCachedPoints(std::span<const ValuedPoint> cached,
                                           std::vector<ValuedPoint> fresh,
                                           Timestamp window_start,
                                           Timestamp regen_from) {
  PointVec out;
  MergeCachedPointsInto(cached, fresh, window_start, regen_from, &out);
  return std::vector<ValuedPoint>(out.begin(), out.end());
}

std::optional<Timestamp> EarliestPointDiff(std::span<const ValuedPoint> a,
                                           std::span<const ValuedPoint> b,
                                           Timestamp window_start,
                                           common::Arena* scratch) {
  // Prune+sort one input into `buf` only when needed: evidence lists are
  // almost always already time-sorted (rules sweep events in order), in
  // which case the comparison below walks the spans in place.
  const auto in_window = [&](const ValuedPoint& p) {
    return p.t > window_start;
  };
  PointVec buf_a{common::ArenaAllocator<ValuedPoint>(scratch)};
  PointVec buf_b{common::ArenaAllocator<ValuedPoint>(scratch)};
  const auto canonicalize = [&](std::span<const ValuedPoint> in,
                                PointVec* buf) -> std::span<const ValuedPoint> {
    const bool sorted = std::is_sorted(in.begin(), in.end());
    const bool pruned = in.empty() || in.front().t > window_start;
    if (sorted && pruned) return in;
    buf->reserve(in.size());
    std::copy_if(in.begin(), in.end(), std::back_inserter(*buf), in_window);
    if (!sorted) std::sort(buf->begin(), buf->end());
    return *buf;
  };
  const std::span<const ValuedPoint> sa = canonicalize(a, &buf_a);
  const std::span<const ValuedPoint> sb = canonicalize(b, &buf_b);
  const size_t n = std::min(sa.size(), sb.size());
  for (size_t i = 0; i < n; ++i) {
    if (!(sa[i] == sb[i])) return std::min(sa[i].t, sb[i].t);
  }
  if (sa.size() > n) return sa[n].t;
  if (sb.size() > n) return sb[n].t;
  return std::nullopt;
}

}  // namespace maritime::rtec
