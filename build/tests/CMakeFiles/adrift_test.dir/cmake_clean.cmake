file(REMOVE_RECURSE
  "CMakeFiles/adrift_test.dir/adrift_test.cc.o"
  "CMakeFiles/adrift_test.dir/adrift_test.cc.o.d"
  "adrift_test"
  "adrift_test.pdb"
  "adrift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
