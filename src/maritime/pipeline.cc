#include "maritime/pipeline.h"

#include <chrono>

namespace maritime::surveillance {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SurveillancePipeline::SurveillancePipeline(const KnowledgeBase* kb,
                                           PipelineConfig config)
    : kb_(kb), config_(config), tracker_(config.tracker) {
  RecognizerConfig rc;
  rc.window = config_.window;
  rc.ce = config_.ce;
  recognizer_ = std::make_unique<PartitionedRecognizer>(*kb_, rc,
                                                        config_.partitions);
  if (config_.archive) {
    archiver_ = std::make_unique<mod::HermesArchiver>(kb_);
  }
}

SlideReport SurveillancePipeline::RunSlide(
    Timestamp q, std::span<const stream::PositionTuple> batch) {
  SlideReport report;
  report.query_time = q;
  report.raw_positions = batch.size();

  // --- online tracking: fresh positions -> trajectory events ---------------
  const double t0 = NowSeconds();
  std::vector<tracker::CriticalPoint> raw_criticals;
  for (const auto& tuple : batch) tracker_.Process(tuple, &raw_criticals);
  tracker_.AdvanceTo(q, &raw_criticals);
  std::vector<tracker::CriticalPoint> criticals =
      compressor_.Compress(std::move(raw_criticals), batch.size());
  report.tracking_seconds = NowSeconds() - t0;
  report.critical_points = criticals.size();

  // --- feed CE recognition ---------------------------------------------------
  for (const auto& cp : criticals) recognizer_->Feed(cp);
  for (const auto& cp : criticals) {
    window_criticals_.push_back(cp);
    all_criticals_.push_back(cp);
  }

  const double t1 = NowSeconds();
  report.recognition = recognizer_->Recognize(q);
  report.recognition_seconds = NowSeconds() - t1;

  // --- offline archival of evicted ("delta") critical points ----------------
  ArchiveEvicted(q);
  return report;
}

void SurveillancePipeline::ArchiveEvicted(Timestamp q) {
  if (archiver_ == nullptr) return;
  const Timestamp cutoff = q - config_.window.range;
  std::vector<tracker::CriticalPoint> evicted;
  while (!window_criticals_.empty() &&
         window_criticals_.front().tau <= cutoff) {
    evicted.push_back(window_criticals_.front());
    window_criticals_.pop_front();
  }
  if (!evicted.empty()) archiver_->ArchiveBatch(evicted);
}

void SurveillancePipeline::Run(
    stream::StreamReplayer& replayer,
    const std::function<void(const SlideReport&)>& on_slide) {
  const Timestamp origin = replayer.first_timestamp();
  if (origin == kInvalidTimestamp) return;
  stream::QueryTimeSequence queries(config_.window, origin);
  const Timestamp last = replayer.last_timestamp();
  while (true) {
    const Timestamp q = queries.Fire();
    const auto batch = replayer.NextBatch(q);
    const SlideReport report = RunSlide(q, batch);
    if (on_slide) on_slide(report);
    if (q >= last) break;
  }
  Finish();
}

void SurveillancePipeline::Finish() {
  std::vector<tracker::CriticalPoint> tail;
  tracker_.Finish(&tail);
  for (const auto& cp : tail) {
    all_criticals_.push_back(cp);
    window_criticals_.push_back(cp);
  }
  if (archiver_ != nullptr) {
    std::vector<tracker::CriticalPoint> rest(window_criticals_.begin(),
                                             window_criticals_.end());
    window_criticals_.clear();
    if (!rest.empty()) archiver_->ArchiveBatch(rest);
  }
}

std::vector<tracker::CriticalPoint> SurveillancePipeline::TakeCriticalPoints() {
  std::vector<tracker::CriticalPoint> out = std::move(all_criticals_);
  all_criticals_.clear();
  return out;
}

}  // namespace maritime::surveillance
