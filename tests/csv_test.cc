#include <gtest/gtest.h>

#include <cstdio>

#include "stream/csv.h"

namespace maritime::stream {
namespace {

std::vector<PositionTuple> Sample() {
  return {
      {237001234, {23.646, 37.942}, 100},
      {237005678, {25.1442, 35.3387}, 160},
  };
}

TEST(CsvTest, WriteParseRoundTrip) {
  const std::string csv = WritePositionsCsv(Sample());
  size_t skipped = 99;
  const auto parsed = ParsePositionsCsv(csv, CsvFormat(), &skipped);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0].mmsi, 237001234u);
  EXPECT_EQ(parsed.value()[0].tau, 100);
  EXPECT_NEAR(parsed.value()[0].pos.lon, 23.646, 1e-6);
  EXPECT_NEAR(parsed.value()[1].pos.lat, 35.3387, 1e-6);
}

TEST(CsvTest, SkipsMalformedRows) {
  const std::string csv =
      "mmsi,t,lon,lat\n"
      "1,10,24.0,37.0\n"
      "not,a,row\n"              // too few usable fields
      "2,xx,24.0,37.0\n"          // bad timestamp
      "3,30,999.0,37.0\n"         // out-of-range longitude
      "4,40,24.0,37.0\n";
  size_t skipped = 0;
  const auto parsed = ParsePositionsCsv(csv, CsvFormat(), &skipped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(skipped, 3u);
}

TEST(CsvTest, AllRowsBadIsCorruption) {
  const auto parsed = ParsePositionsCsv("mmsi,t,lon,lat\njunk,x,y,z\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, EmptyInputGivesEmptyVector) {
  const auto parsed = ParsePositionsCsv("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(CsvTest, CustomLayout) {
  // chorochronos-like: t;mmsi;lat;lon with semicolons and no header.
  CsvFormat fmt;
  fmt.separator = ';';
  fmt.has_header = false;
  fmt.tau_column = 0;
  fmt.mmsi_column = 1;
  fmt.lat_column = 2;
  fmt.lon_column = 3;
  const auto parsed = ParsePositionsCsv("100;42;37.9;23.6\n", fmt);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].mmsi, 42u);
  EXPECT_EQ(parsed.value()[0].tau, 100);
  EXPECT_NEAR(parsed.value()[0].pos.lat, 37.9, 1e-9);
  EXPECT_NEAR(parsed.value()[0].pos.lon, 23.6, 1e-9);
}

TEST(CsvTest, HeaderlessDefaultLayout) {
  CsvFormat fmt;
  fmt.has_header = false;
  const auto parsed = ParsePositionsCsv("5,50,24.5,38.5", fmt);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 1u);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/maritime_csv_test.csv";
  ASSERT_TRUE(SavePositionsCsv(path, Sample()).ok());
  const auto loaded = LoadPositionsCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value(), Sample());
  std::remove(path.c_str());
}

TEST(CsvTest, LoadMissingFileFails) {
  const auto loaded = LoadPositionsCsv("/nonexistent-dir/x.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, NegativeTimestampAndCoordinates) {
  const auto parsed =
      ParsePositionsCsv("mmsi,t,lon,lat\n9,-50,-70.5,-33.2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()[0].tau, -50);
  EXPECT_NEAR(parsed.value()[0].pos.lon, -70.5, 1e-9);
}

}  // namespace
}  // namespace maritime::stream
