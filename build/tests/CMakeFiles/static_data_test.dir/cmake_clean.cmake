file(REMOVE_RECURSE
  "CMakeFiles/static_data_test.dir/static_data_test.cc.o"
  "CMakeFiles/static_data_test.dir/static_data_test.cc.o.d"
  "static_data_test"
  "static_data_test.pdb"
  "static_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
