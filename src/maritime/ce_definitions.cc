#include "maritime/ce_definitions.h"

#include <algorithm>
#include <cassert>

#include "common/arena.h"

namespace maritime::surveillance {
namespace {

stream::Mmsi MmsiOf(rtec::Term vessel) {
  return static_cast<stream::Mmsi>(vessel.id);
}

/// Shared environment captured by every rule closure.
struct CeEnv {
  MaritimeSchema schema;
  const KnowledgeBase* kb;
  const SpatialFactTable* facts;
  CeOptions options;

  /// The close(Lon, Lat, Area) predicate at time `t`: on-demand Haversine
  /// reasoning against the knowledge base, or a precomputed-fact lookup in
  /// the Figure 11(b) setting.
  bool IsClose(const rtec::EvalContext& ctx, rtec::Term vessel,
               int32_t area_id, Timestamp t) const {
    if (options.use_spatial_facts) {
      return facts->IsCloseAt(MmsiOf(vessel), area_id, t);
    }
    const auto coord = ctx.CoordAt(vessel, t);
    if (!coord.has_value()) return false;
    return kb->Close(*coord, area_id);
  }

  /// True iff the vessel is close to no port at `t` ("in open water").
  /// In the spatial-facts setting this is derivable from the fact group
  /// (absence of any port fact), so both modes agree.
  bool AwayFromPorts(const rtec::EvalContext& ctx, rtec::Term vessel,
                     Timestamp t) const {
    if (options.use_spatial_facts) {
      for (const int32_t id : facts->AreasCloseAt(MmsiOf(vessel), t)) {
        const AreaInfo* area = kb->FindArea(id);
        if (area != nullptr && area->kind == AreaKind::kPort) return false;
      }
      return true;
    }
    const auto coord = ctx.CoordAt(vessel, t);
    if (!coord.has_value()) return false;  // unknown position: stay silent
    return !kb->AnyAreaCloseTo(*coord, AreaKind::kPort);
  }

  /// Areas of `kind` close to the vessel at `t`.
  std::vector<int32_t> AreasClose(const rtec::EvalContext& ctx,
                                  rtec::Term vessel, Timestamp t,
                                  AreaKind kind) const {
    std::vector<int32_t> out;
    if (options.use_spatial_facts) {
      for (const int32_t id :
           facts->AreasCloseAt(MmsiOf(vessel), t)) {
        const AreaInfo* area = kb->FindArea(id);
        if (area != nullptr && area->kind == kind) out.push_back(id);
      }
      return out;
    }
    const auto coord = ctx.CoordAt(vessel, t);
    if (!coord.has_value()) return out;
    return kb->AreasCloseTo(*coord, kind);
  }

};

/// Per-rule-invocation memoization of the fleet-count predicates for one
/// area. Both counts below scan every vessel carrying the stopped / lowSpeed
/// fluent and test closeness to the area at each candidate time — O(fleet)
/// Haversine or fact lookups per candidate. Closeness is time-constant for
/// almost every vessel of a mostly-idle fleet (a single position fix or fact
/// group is in force across the whole window), so the memo classifies each
/// vessel once per invocation:
///   - constant and not close: dropped from every candidate's scan (the
///     overwhelming majority — vessels idling far from this area);
///   - constant and close: only the HoldsRight check remains per candidate;
///   - varying (fixes of differing closeness, or a first fix taking force
///     mid-window): the exact per-candidate check, unchanged.
/// The classification evaluates the same closeness predicate the exact path
/// uses at every point where the answer could differ, so each count equals
/// the unmemoized fleet scan bit for bit. Classification is lazy per fluent:
/// an invocation with no candidates (or one that never consults lowSpeed)
/// pays nothing. Entry storage bumps the invocation's slide arena (the same
/// scratch backing the rule's output points), so the memo adds no per-slide
/// heap traffic.
class MARITIME_ARENA_SCOPED CloseCountMemo {
 public:
  CloseCountMemo(const CeEnv& env, const rtec::EvalContext& ctx,
                 int32_t area_id, common::Arena* scratch)
      : env_(env),
        ctx_(ctx),
        area_(area_id),
        stopped_(common::ArenaAllocator<Entry>(scratch)),
        low_speed_(common::ArenaAllocator<Entry>(scratch)) {}

  /// vesselsStoppedIn(Area) at the right limit of `t`: vessels whose
  /// stopped=true interval covers t+1 (so an episode starting exactly at t
  /// counts, one ending exactly at t does not) and which are close to the
  /// area.
  int CountStoppedClose(Timestamp t) {
    int count = 0;
    for (const Entry& e : StoppedEntries()) {
      if (ctx_.HoldsRightOf(env_.schema.stopped, e.vessel, rtec::kTrue, t) &&
          (!e.exact || env_.IsClose(ctx_, e.vessel, area_, t))) {
        ++count;
      }
    }
    return count;
  }

  /// Number of fishing vessels still engaged (stopped or in slow motion)
  /// close to the area right after `t`.
  int CountFishingEngaged(Timestamp t) {
    int count = 0;
    for (const Entry& e : StoppedEntries()) {
      if (!e.fishing) continue;
      if (ctx_.HoldsRightOf(env_.schema.stopped, e.vessel, rtec::kTrue, t) &&
          (!e.exact || env_.IsClose(ctx_, e.vessel, area_, t))) {
        ++count;
      }
    }
    for (const Entry& e : LowSpeedEntries()) {
      if (!e.fishing) continue;
      if (ctx_.HoldsRightOf(env_.schema.stopped, e.vessel, rtec::kTrue, t)) {
        continue;  // already counted above
      }
      if (ctx_.HoldsRightOf(env_.schema.low_speed, e.vessel, rtec::kTrue, t) &&
          (!e.exact || env_.IsClose(ctx_, e.vessel, area_, t))) {
        ++count;
      }
    }
    return count;
  }

 private:
  struct Entry {
    rtec::Term vessel;
    bool fishing;  ///< kb->IsFishing, hoisted out of the per-candidate scan.
    bool exact;    ///< Closeness varies over the window: re-check at each t.
  };

  const common::ArenaVector<Entry>& StoppedEntries() {
    if (!stopped_built_) {
      stopped_built_ = true;
      Classify(env_.schema.stopped, &stopped_);
    }
    return stopped_;
  }

  const common::ArenaVector<Entry>& LowSpeedEntries() {
    if (!low_speed_built_) {
      low_speed_built_ = true;
      Classify(env_.schema.low_speed, &low_speed_);
    }
    return low_speed_;
  }

  void Classify(rtec::FluentId fluent, common::ArenaVector<Entry>* out) {
    for (const rtec::Term& v : ctx_.FluentKeys(fluent)) {
      bool close = false;
      const bool constant =
          env_.options.use_spatial_facts
              ? env_.facts->ConstantCloseOver(MmsiOf(v), area_,
                                              ctx_.window_start(),
                                              ctx_.query_time(), &close)
              : ConstantCloseOnDemand(v, &close);
      if (constant && !close) continue;
      out->push_back(Entry{v, env_.kb->IsFishing(MmsiOf(v)), !constant});
    }
  }

  /// On-demand analogue of SpatialFactTable::ConstantCloseOver: closeness to
  /// the area is the same at every window time iff every coord fix in force
  /// over it agrees — including the implicit "no position yet" (never close)
  /// before a vessel's first fix. A vessel with many fixes is reported
  /// varying without scanning them all: the exact per-candidate check is
  /// cheaper than full classification there.
  bool ConstantCloseOnDemand(rtec::Term vessel, bool* close) const {
    constexpr int kMaxFixes = 8;
    // All scan state lives in one local struct so the callback captures a
    // single pointer and stays inside std::function's small-buffer slot —
    // this runs once per candidate vessel per rule invocation.
    struct Scan {
      const KnowledgeBase* kb;
      int32_t area;
      Timestamp window_start;
      Timestamp query_time;
      int fixes = 0;
      bool mixed = false;
      bool first_covers = false;
      bool val = false;
    };
    Scan scan{env_.kb, area_, ctx_.window_start(), ctx_.query_time()};
    ctx_.ForEachCoordCovering(
        vessel, scan.window_start,
        [&scan](Timestamp t, const geo::GeoPoint& pos) {
          // Fixes past the query time are never consulted by a candidate.
          if (scan.mixed || t > scan.query_time) return;
          if (++scan.fixes > kMaxFixes) {
            scan.mixed = true;
            return;
          }
          const bool c = scan.kb->Close(pos, scan.area);
          if (scan.fixes == 1) {
            scan.first_covers = t <= scan.window_start;
            scan.val = c;
          } else if (c != scan.val) {
            scan.mixed = true;
          }
        });
    if (scan.fixes == 0) {
      *close = false;
      return true;
    }
    if (scan.mixed) return false;
    // False before the fix, then true: varies over the window.
    if (!scan.first_covers && scan.val) return false;
    *close = scan.val;
    return true;
  }

  const CeEnv& env_;
  const rtec::EvalContext& ctx_;
  const int32_t area_;
  bool stopped_built_ = false;
  bool low_speed_built_ = false;
  common::ArenaVector<Entry> stopped_;
  common::ArenaVector<Entry> low_speed_;
};

/// Domain helper: subjects of the given marker events in the window.
std::vector<rtec::Term> SubjectsOf(const rtec::EvalContext& ctx,
                                   std::initializer_list<rtec::EventId> ids) {
  size_t total = 0;
  for (const rtec::EventId id : ids) total += ctx.Events(id).size();
  std::vector<rtec::Term> out;
  out.reserve(total);
  for (const rtec::EventId id : ids) {
    for (const rtec::EventInstance& e : ctx.Events(id)) {
      out.push_back(e.subject);
    }
  }
  return out;
}

/// Domain helper: every area of the given kind as a term list.
std::vector<rtec::Term> AreasOfKind(const KnowledgeBase* kb, AreaKind kind) {
  std::vector<rtec::Term> out;
  out.reserve(kb->areas().size());
  for (const AreaInfo& a : kb->areas()) {
    if (a.kind == kind) out.push_back(AreaTerm(a.id));
  }
  return out;
}

/// Registers a durative input ME as a simple fluent driven by its start/end
/// marker events: initiatedAt(F(V)=true, T) iff happensAt(startMarker(V), T),
/// terminatedAt(F(V)=true, T) iff happensAt(endMarker(V), T).
void RegisterInputDurativeMe(rtec::Engine& engine, rtec::FluentId fluent,
                             rtec::EventId start_marker,
                             rtec::EventId end_marker) {
  rtec::SimpleFluentSpec spec;
  spec.fluent = fluent;
  spec.domain = [start_marker, end_marker](const rtec::EvalContext& ctx) {
    return SubjectsOf(ctx, {start_marker, end_marker});
  };
  spec.rules = [start_marker, end_marker](
                   const rtec::EvalContext& ctx, rtec::Term key,
                   rtec::PointVec* initiated,
                   rtec::PointVec* terminated) {
    for (const rtec::EventInstance& e : ctx.Events(start_marker)) {
      if (e.subject == key && ctx.NeedsEval(e.t)) {
        initiated->push_back({rtec::kTrue, e.t});
      }
    }
    for (const rtec::EventInstance& e : ctx.Events(end_marker)) {
      if (e.subject == key && ctx.NeedsEval(e.t)) {
        terminated->push_back({rtec::kTrue, e.t});
      }
    }
  };
  spec.output = false;
  // Points fall exactly at the key's own marker occurrences.
  spec.deps = rtec::DependencySpec{{start_marker, end_marker}, {}, false,
                                   false, {}};
  engine.AddSimpleFluent(std::move(spec));
}

}  // namespace

void RegisterMaritimeCes(rtec::Engine& engine, const MaritimeSchema& schema,
                         const KnowledgeBase* kb,
                         const SpatialFactTable* facts, CeOptions options) {
  assert(kb != nullptr);
  assert(!options.use_spatial_facts || facts != nullptr);
  const CeEnv env{schema, kb, facts, options};

  // Vessel→area dependency projector shared by the four area-keyed CE
  // definitions: a dirty vessel can only affect the areas it is (or was)
  // close to at some time in force >= `from`. In the spatial-facts setting
  // that is the union over its fact groups from the boundary group onward;
  // in the on-demand setting, every area close to a coord fix in force over
  // the same span. Both are conservative supersets (they include the
  // pre-change closeness, so a vessel *ceasing* to be close still dirties
  // the area it left — see DESIGN.md §14). A vessel with no position at all
  // projects to no areas: every `close` read involving it is false/empty
  // before and after, so no output key can change.
  // Scratch vectors are captured by value and reused across calls (the
  // projector runs serially at evaluation time, and each definition's
  // DependencySpec owns its own copy), so a steady-state projection touches
  // the heap only when a vessel reaches more areas than ever before.
  const auto project_vessel_to_areas =
      [env, areas = std::vector<int32_t>(), close = std::vector<int32_t>()](
          const rtec::EvalContext& ctx, rtec::Term in_key, Timestamp from,
          std::vector<rtec::Term>* out) mutable {
        if (in_key.kind != kVesselTermKind) return false;
        if (env.options.use_spatial_facts) {
          env.facts->AreasCoveringFrom(MmsiOf(in_key), from, &areas);
        } else {
          areas.clear();
          // One-pointer capture keeps the callback in std::function's
          // small-buffer slot (no per-call heap traffic).
          struct Sweep {
            const KnowledgeBase* kb;
            std::vector<int32_t>* areas;
            std::vector<int32_t>* close;
          };
          Sweep sweep{env.kb, &areas, &close};
          ctx.ForEachCoordCovering(
              in_key, from, [&sweep](Timestamp, const geo::GeoPoint& pos) {
                sweep.kb->AreasCloseTo(pos, sweep.close);
                sweep.areas->insert(sweep.areas->end(), sweep.close->begin(),
                                    sweep.close->end());
              });
          std::sort(areas.begin(), areas.end());
          areas.erase(std::unique(areas.begin(), areas.end()), areas.end());
        }
        out->reserve(out->size() + areas.size());
        for (const int32_t id : areas) out->push_back(AreaTerm(id));
        return true;
      };

  // --- durative input MEs ---------------------------------------------------
  RegisterInputDurativeMe(engine, schema.stopped, schema.stop_start,
                          schema.stop_end);
  RegisterInputDurativeMe(engine, schema.low_speed, schema.slow_start,
                          schema.slow_end);

  // --- suspicious(Area) — rule-set (3) ---------------------------------------
  {
    rtec::SimpleFluentSpec spec;
    spec.fluent = schema.suspicious;
    spec.domain = [kb](const rtec::EvalContext&) {
      // Officials monitor every non-port area for loitering.
      std::vector<rtec::Term> out;
      out.reserve(kb->areas().size());
      for (const AreaInfo& a : kb->areas()) {
        if (a.kind != AreaKind::kPort) out.push_back(AreaTerm(a.id));
      }
      return out;
    };
    spec.rules = [env](const rtec::EvalContext& ctx, rtec::Term key,
                       rtec::PointVec* initiated,
                       rtec::PointVec* terminated) {
      const int32_t area = key.id;
      CloseCountMemo memo(env, ctx, area, initiated->get_allocator().arena());
      for (const rtec::Term& v : ctx.FluentKeys(env.schema.stopped)) {
        const rtec::FluentTimeline& tl = ctx.Timeline(env.schema.stopped, v);
        for (const Timestamp t : tl.StartsFor(rtec::kTrue)) {
          if (!ctx.NeedsEval(t)) continue;
          if (env.IsClose(ctx, v, area, t) &&
              memo.CountStoppedClose(t) >=
                  env.options.suspicious_min_vessels) {
            initiated->push_back({rtec::kTrue, t});
          }
        }
        for (const Timestamp t : tl.EndsFor(rtec::kTrue)) {
          if (!ctx.NeedsEval(t)) continue;
          if (env.IsClose(ctx, v, area, t) &&
              memo.CountStoppedClose(t) <
                  env.options.suspicious_min_vessels) {
            terminated->push_back({rtec::kTrue, t});
          }
        }
      }
    };
    spec.output = true;
    // Reads every vessel's stopped timeline and position (the loitering
    // count scans the fleet); the projector scopes a vessel's changes to the
    // areas it could be close to instead of dirtying the whole area set.
    spec.deps = rtec::DependencySpec{{}, {schema.stopped}, true, true, {}};
    spec.deps->project = project_vessel_to_areas;
    engine.AddSimpleFluent(std::move(spec));
  }

  // --- illegalFishing(Area) — rule-set (4) ------------------------------------
  {
    rtec::SimpleFluentSpec spec;
    spec.fluent = schema.illegal_fishing;
    spec.domain = [kb](const rtec::EvalContext&) {
      return AreasOfKind(kb, AreaKind::kForbiddenFishing);
    };
    spec.rules = [env](const rtec::EvalContext& ctx, rtec::Term key,
                       rtec::PointVec* initiated,
                       rtec::PointVec* terminated) {
      const int32_t area = key.id;
      CloseCountMemo memo(env, ctx, area, initiated->get_allocator().arena());
      // Initiation (a): a fishing vessel stops close to the area.
      for (const rtec::Term& v : ctx.FluentKeys(env.schema.stopped)) {
        if (!env.kb->IsFishing(MmsiOf(v))) continue;
        const rtec::FluentTimeline& tl = ctx.Timeline(env.schema.stopped, v);
        for (const Timestamp t : tl.StartsFor(rtec::kTrue)) {
          if (!ctx.NeedsEval(t)) continue;
          if (env.IsClose(ctx, v, area, t)) {
            initiated->push_back({rtec::kTrue, t});
          }
        }
      }
      // Initiation (b): a fishing vessel moves "too" slowly close to it.
      for (const rtec::EventInstance& e : ctx.Events(env.schema.slow_motion)) {
        if (!ctx.NeedsEval(e.t)) continue;
        if (!env.kb->IsFishing(MmsiOf(e.subject))) continue;
        if (env.IsClose(ctx, e.subject, area, e.t)) {
          initiated->push_back({rtec::kTrue, e.t});
        }
      }
      // Termination: fishing activity in the area ceases — a fishing
      // vessel's stop or slow-motion episode ends and no fishing vessel
      // remains engaged close to the area (the paper describes these
      // conditions but omits the rules to save space).
      const auto try_terminate = [&](rtec::Term v, Timestamp t) {
        if (!ctx.NeedsEval(t)) return;
        if (!env.kb->IsFishing(MmsiOf(v))) return;
        if (env.IsClose(ctx, v, area, t) &&
            memo.CountFishingEngaged(t) == 0) {
          terminated->push_back({rtec::kTrue, t});
        }
      };
      for (const rtec::Term& v : ctx.FluentKeys(env.schema.stopped)) {
        for (const Timestamp t :
             ctx.Timeline(env.schema.stopped, v).EndsFor(rtec::kTrue)) {
          try_terminate(v, t);
        }
      }
      for (const rtec::Term& v : ctx.FluentKeys(env.schema.low_speed)) {
        for (const Timestamp t :
             ctx.Timeline(env.schema.low_speed, v).EndsFor(rtec::kTrue)) {
          try_terminate(v, t);
        }
      }
    };
    spec.output = true;
    spec.deps = rtec::DependencySpec{
        {schema.slow_motion}, {schema.stopped, schema.low_speed}, true, true, {}};
    spec.deps->project = project_vessel_to_areas;
    engine.AddSimpleFluent(std::move(spec));
  }

  // --- illegalShipping(Area) — rule (5) ----------------------------------------
  {
    rtec::DerivedEventSpec spec;
    spec.event = schema.illegal_shipping;
    spec.compute = [env](const rtec::EvalContext& ctx,
                         std::vector<rtec::EventInstance>* out) {
      for (const rtec::EventInstance& e : ctx.Events(env.schema.gap)) {
        if (!ctx.NeedsEval(e.t)) continue;
        for (const int32_t area :
             env.AreasClose(ctx, e.subject, e.t, AreaKind::kProtected)) {
          out->push_back(
              rtec::EventInstance{e.subject, AreaTerm(area), e.t});
        }
      }
    };
    spec.output = true;
    // Keyless output: the projector still helps — an idle fleet projects to
    // nothing, leaving the derivation clean, and otherwise the regen region
    // starts at the earliest *projected* mark.
    spec.deps = rtec::DependencySpec{{schema.gap}, {}, true, true, {}};
    spec.deps->project = project_vessel_to_areas;
    engine.AddDerivedEvent(std::move(spec));
  }

  // --- adrift(Vessel) — extension CE (see MaritimeSchema::adrift) -------------
  if (options.enable_adrift) {
    rtec::SimpleFluentSpec spec;
    spec.fluent = schema.adrift;
    const auto stop_start = schema.stop_start;
    const auto stop_end = schema.stop_end;
    spec.domain = [stop_start, stop_end](const rtec::EvalContext& ctx) {
      return SubjectsOf(ctx, {stop_start, stop_end});
    };
    spec.rules = [env](const rtec::EvalContext& ctx, rtec::Term key,
                       rtec::PointVec* initiated,
                       rtec::PointVec* terminated) {
      const rtec::FluentTimeline& tl = ctx.Timeline(env.schema.stopped, key);
      for (const Timestamp t : tl.StartsFor(rtec::kTrue)) {
        if (!ctx.NeedsEval(t)) continue;
        if (env.AwayFromPorts(ctx, key, t)) {
          initiated->push_back({rtec::kTrue, t});
        }
      }
      for (const Timestamp t : tl.EndsFor(rtec::kTrue)) {
        if (!ctx.NeedsEval(t)) continue;
        terminated->push_back({rtec::kTrue, t});
      }
    };
    spec.output = true;
    // Only the key's own stopped episodes and own position are read.
    spec.deps =
        rtec::DependencySpec{{}, {schema.stopped}, true, false, {}};
    engine.AddSimpleFluent(std::move(spec));
  }

  // --- dangerousShipping(Area) — rule (6) ---------------------------------------
  {
    rtec::DerivedEventSpec spec;
    spec.event = schema.dangerous_shipping;
    spec.compute = [env](const rtec::EvalContext& ctx,
                         std::vector<rtec::EventInstance>* out) {
      for (const rtec::EventInstance& e :
           ctx.Events(env.schema.slow_motion)) {
        if (!ctx.NeedsEval(e.t)) continue;
        for (const int32_t area :
             env.AreasClose(ctx, e.subject, e.t, AreaKind::kShallow)) {
          if (env.kb->IsShallowFor(area, MmsiOf(e.subject))) {
            out->push_back(
                rtec::EventInstance{e.subject, AreaTerm(area), e.t});
          }
        }
      }
    };
    spec.output = true;
    spec.deps = rtec::DependencySpec{{schema.slow_motion}, {}, true, true, {}};
    spec.deps->project = project_vessel_to_areas;
    engine.AddDerivedEvent(std::move(spec));
  }
}

}  // namespace maritime::surveillance
