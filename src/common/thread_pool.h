#ifndef MARITIME_COMMON_THREAD_POOL_H_
#define MARITIME_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace maritime::common {

/// A fixed-size pool of worker threads shared by every parallel stage of the
/// pipeline (mobility-tracker shards, CE-recognition partitions). Creating
/// threads per window slide — as the recognizer used to do — costs more than
/// the recognition itself at small slides; the pool is created once and
/// reused for the lifetime of the process.
///
/// The calling thread always participates in `ParallelFor`, so a pool with
/// zero workers is a valid (fully serial) configuration and the pool can
/// never deadlock waiting for itself.
class ThreadPool {
 public:
  /// Spawns `workers` background threads (>= 0). Total parallelism of a
  /// `ParallelFor` is `workers + 1` because the caller joins in.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Runs `body(i)` for every i in [0, n) across the workers plus the
  /// calling thread; returns once all n indices have completed. Indices are
  /// claimed dynamically, so uneven per-index cost balances itself.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body)
      MARITIME_EXCLUDES(mu_);

  /// Like ParallelFor, but `body(i, slot)` additionally receives a dense
  /// execution-slot id in [0, worker_count() + 1): the caller drains as slot
  /// 0 and the k-th helper task as slot k + 1. Each slot runs on at most one
  /// thread at a time, so callers may index per-thread scratch (e.g. one
  /// arena per slot) without synchronization.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body)
      MARITIME_EXCLUDES(mu_);

  /// Enqueues one fire-and-forget task. Used for work whose completion is
  /// observed through some other channel; `ParallelFor` is the right API for
  /// join-style fan-out. After `Stop()` the task runs inline on the calling
  /// thread instead of being enqueued (no task is ever silently dropped).
  void Submit(std::function<void()> task) MARITIME_EXCLUDES(mu_);

  /// Drains the queue and joins the workers. Idempotent and safe to call
  /// from several threads concurrently (the destructor calls it too); every
  /// task submitted before the stop flag is observed still runs. After
  /// Stop(), `ParallelFor` degrades to serial execution on the caller.
  void Stop() MARITIME_EXCLUDES(mu_, join_mu_);

  /// The process-wide shared pool. Sized to the hardware concurrency minus
  /// one (caller participation restores full width); the MARITIME_THREADS
  /// environment variable overrides the total width, which benches use to
  /// sweep a threads axis.
  static ThreadPool& Shared();

 private:
  void WorkerLoop() MARITIME_EXCLUDES(mu_);
  bool StoppedLocked() const MARITIME_REQUIRES(mu_) { return stop_; }

  /// Only started in the constructor; joined exactly once under join_mu_.
  std::vector<std::thread> workers_;
  std::mutex mu_ MARITIME_ACQUIRED_BEFORE(join_mu_);
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_ MARITIME_GUARDED_BY(mu_);
  bool stop_ MARITIME_GUARDED_BY(mu_) = false;
  /// Serializes the join phase of concurrent Stop()/destructor calls.
  std::mutex join_mu_;
  bool joined_ MARITIME_GUARDED_BY(join_mu_) = false;
};

}  // namespace maritime::common

#endif  // MARITIME_COMMON_THREAD_POOL_H_
