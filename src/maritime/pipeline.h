#ifndef MARITIME_MARITIME_PIPELINE_H_
#define MARITIME_MARITIME_PIPELINE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "maritime/knowledge.h"
#include "maritime/recognizer.h"
#include "mod/hermes.h"
#include "stream/replayer.h"
#include "stream/sliding_window.h"
#include "tracker/sharded_tracker.h"

namespace maritime::surveillance {

/// End-to-end configuration of the surveillance system (Figure 1).
struct PipelineConfig {
  /// Sliding window (range ω, slide β) shared by online tracking and CE
  /// recognition.
  stream::WindowSpec window{kHour, 10 * kMinute};
  tracker::TrackerParams tracker;
  CeOptions ce;
  /// Number of CE-recognition partitions (1 = single processor; 2
  /// reproduces the paper's distributed setting).
  int partitions = 1;
  /// Number of MMSI-hashed mobility-tracker shards processed concurrently
  /// on the shared thread pool. 1 reproduces the serial tracker bit for
  /// bit; any shard count yields the identical critical-point sequence.
  int tracker_shards = 1;
  /// Enable the offline archival path (staging → reconstruction → loading
  /// into the trajectory store).
  bool archive = true;
  /// Incremental RTEC evaluation (dirty-key caching across slides); results
  /// are bit-identical to full recomputation.
  bool incremental_recognition = false;
  /// Engine selection override (kFromFlag = honor incremental_recognition;
  /// kAuto picks per window shape and observed dirty fraction). Passed
  /// through to RecognizerConfig::engine.
  EngineMode recognition_engine = EngineMode::kFromFlag;
  /// Fan the keys of one definition layer out over the shared thread pool
  /// (incremental engine only).
  bool parallel_recognition_keys = false;
  /// Phase-pipelined slide execution: with depth d >= 2, up to d - 1 slides
  /// are staged ahead — their tracker shards run and their spatial facts
  /// precompute on the pool's tracker lane while the caller recognizes an
  /// earlier slide. Depth 1 is strict serial execution. Output (reports,
  /// CEs, snapshots) is bit-identical at any depth: every shared-state
  /// mutation happens at the commit barrier, in slide order, on the caller.
  int pipeline_depth = 1;
  /// Thread pool for tracker shards, partition recognition, and staged
  /// slides. nullptr (default) uses the process-wide shared pool; benches
  /// inject local pools to sweep worker counts and core pinning in one
  /// process. Must outlive the pipeline.
  common::ThreadPool* pool = nullptr;
};

/// What happened during one window slide.
struct SlideReport {
  Timestamp query_time = 0;
  size_t raw_positions = 0;    ///< Fresh positions consumed this slide.
  size_t critical_points = 0;  ///< Critical points emitted this slide.
  /// Recognition output, one entry per partition.
  std::vector<rtec::RecognitionResult> recognition;
  double tracking_seconds = 0.0;
  double recognition_seconds = 0.0;
  /// Per-tracker-shard wall time and volume for this slide (size =
  /// config.tracker_shards).
  std::vector<tracker::ShardSlideStats> shard_stats;
  /// True for the synthetic report Finish() produces when flushing the
  /// tracker tail at end of stream.
  bool final_flush = false;
};

/// Inspectable summary at the head of every pipeline snapshot: the config
/// fingerprint the restore will be checked against, where the run stood, and
/// rough size indicators. Readable without a KnowledgeBase (see
/// ReadSnapshotManifest), so a checkpoint CLI can describe a snapshot file
/// cheaply.
struct SnapshotManifest {
  Timestamp last_query = kInvalidTimestamp;
  stream::WindowSpec window{0, 0};
  int32_t partitions = 0;
  int32_t tracker_shards = 0;
  bool archive = false;
  bool incremental_recognition = false;
  uint64_t window_critical_points = 0;  ///< Awaiting archival.
  uint64_t archived_trips = 0;          ///< In the trajectory store.
  /// Dependency-scoped dirty-propagation telemetry summed over the
  /// recognizer partitions (manifest v2; zero when reading a v1 snapshot).
  uint64_t spans_narrowed = 0;
  uint64_t fleet_floor_hits = 0;
};

/// Decodes only the manifest section of a snapshot payload (the bytes after
/// the file header, i.e. what DecodeSnapshotFile returns).
Result<SnapshotManifest> ReadSnapshotManifest(std::string_view payload);

/// The complete processing scheme of Figure 1: Data-Scanner output (a
/// positional stream) flows through the Mobility Tracker and Compressor into
/// critical points, which feed both the Complex Event Recognition module and
/// (lagged by ω, so online and offline state never overlap) the offline
/// archival path into the trajectory store.
class SurveillancePipeline {
 public:
  /// `kb` must outlive the pipeline.
  SurveillancePipeline(const KnowledgeBase* kb, PipelineConfig config);
  /// Waits for any staging task still in flight (it captures this object);
  /// staged-but-uncommitted slides are discarded, not committed.
  ~SurveillancePipeline();

  /// Processes the fresh positions of the slide ending at query time `q`
  /// (their tau must be <= q), then recognizes CEs at `q`. Commits any
  /// slides still staged ahead first, so interleaving RunSlide with
  /// StageSlide keeps slide order.
  SlideReport RunSlide(Timestamp q,
                       std::span<const stream::PositionTuple> batch);

  // --- pipelined execution -------------------------------------------------
  /// Stages the slide ending at `q`: copies the batch and runs tracking plus
  /// spatial-fact staging asynchronously on the pool's tracker lane (inline
  /// when pipeline_depth <= 1 or the pool has no workers). Staging is
  /// strictly sequential across slides — the tracker is stateful — so this
  /// waits for the previous staged slide's tracking before dispatching.
  /// Call CommitNextSlide() to turn the oldest staged slide into a report.
  void StageSlide(Timestamp q, std::span<const stream::PositionTuple> batch);

  /// Commits the oldest staged slide (blocking until its staging task is
  /// done): feeds the recognizer, recognizes, and archives on the calling
  /// thread, in slide order — the commit barrier that makes pipelined
  /// output bit-identical to serial. Precondition: staged_slide_count() > 0.
  SlideReport CommitNextSlide();

  /// Slides staged but not yet committed.
  size_t staged_slide_count() const { return staged_.size(); }

  /// Commits every staged slide, invoking `on_slide` per report. A no-op
  /// when nothing is staged. Snapshots (SaveTo / SaveSnapshot) may only be
  /// taken at this barrier — with slides in flight the tracker state is
  /// ahead of the recognizer's.
  void DrainStagedSlides(
      const std::function<void(const SlideReport&)>& on_slide = nullptr);

  /// Replays an entire recorded stream, sliding the window in step with the
  /// reported timestamps; invokes `on_slide` (if set) after every slide and
  /// once more for the end-of-stream flush when it produced recognition.
  void Run(stream::StreamReplayer& replayer,
           const std::function<void(const SlideReport&)>& on_slide = nullptr);

  /// Closes open episodes, feeds the tracker's tail critical points to the
  /// recognizer, runs one final recognition past the last query time (so
  /// complex events completing in the last partial window are not dropped),
  /// and archives everything still pending. Returns what the flush did.
  SlideReport Finish();

  const tracker::ShardedMobilityTracker& mobility_tracker() const {
    return tracker_;
  }
  /// Compression counters aggregated over all tracker shards.
  tracker::CompressionStats compression_stats() const {
    return tracker_.compression_stats();
  }
  PartitionedRecognizer& recognizer() { return *recognizer_; }
  const mod::HermesArchiver* archiver() const { return archiver_.get(); }
  const PipelineConfig& config() const { return config_; }

  /// Every critical point emitted so far (kept for RMSE / export use; cleared
  /// with TakeCriticalPoints). Diagnostic only: not part of a snapshot, so a
  /// restored pipeline starts this log empty.
  const std::vector<tracker::CriticalPoint>& critical_points() const {
    return all_criticals_;
  }
  std::vector<tracker::CriticalPoint> TakeCriticalPoints();

  // --- checkpointing -------------------------------------------------------
  /// Serializes the full pipeline state at a slide boundary (call only
  /// between RunSlide calls, never mid-slide): manifest, tracker shards, the
  /// recognizer partitions with their RTEC engines, the window of critical
  /// points awaiting archival, and the archival path. A pipeline restored
  /// from this state produces bit-identical SlideReports for every
  /// subsequent slide.
  void SaveTo(snapshot::Writer& w) const;
  /// Restores into a pipeline built with the same KnowledgeBase and an
  /// equivalent PipelineConfig (window, partitions, tracker shards, archive
  /// and incremental flags are verified — InvalidArgument on mismatch;
  /// malformed input yields Corruption and newer formats Unimplemented).
  Status RestoreFrom(snapshot::Reader& r);

  /// Writes the state to `path` as a checksummed snapshot file.
  Status SaveSnapshot(const std::string& path) const;
  /// Restores from a snapshot file written by SaveSnapshot.
  Status LoadSnapshot(const std::string& path);

  /// Continues a replay from the restored position: skips the stream prefix
  /// already consumed before the snapshot (tuples at or before the saved
  /// query time) and processes the remaining slides exactly as Run would
  /// have. On a pipeline that has not restored (or run) anything, this is
  /// identical to Run.
  void Resume(stream::StreamReplayer& replayer,
              const std::function<void(const SlideReport&)>& on_slide =
                  nullptr);

 private:
  /// One staged-but-uncommitted slide. The staging task (pool) fills the
  /// outputs and flips `ready`; the commit barrier (caller) consumes them.
  /// The mu/cv handshake is the happens-before edge between the two.
  struct StagedSlide {
    Timestamp q = kInvalidTimestamp;
    std::vector<stream::PositionTuple> batch;  ///< Owned copy of the input.
    // --- staging outputs, written by the staging task ---
    std::vector<tracker::CriticalPoint> criticals;
    PartitionedRecognizer::StagedFeed staged_feed;
    std::vector<tracker::ShardSlideStats> shard_stats;
    double tracking_seconds = 0.0;
    // --- completion handshake ---
    std::mutex mu;
    std::condition_variable cv;
    bool ready MARITIME_GUARDED_BY(mu) = false;
  };

  void ArchiveEvicted(Timestamp q);
  /// Runs one staged slide's tracking + staging phase (on the pool or
  /// inline) and signals completion.
  void RunStaging(StagedSlide* slide);
  /// Blocks until `slide`'s staging task has finished.
  static void WaitStaged(StagedSlide* slide);
  /// The shared replay loop of Run and Resume: fire query times, stage each
  /// batch, commit once the pipeline is full, drain, flush.
  void DriveLoop(stream::StreamReplayer& replayer,
                 stream::QueryTimeSequence& queries, Timestamp last,
                 const std::function<void(const SlideReport&)>& on_slide);

  const KnowledgeBase* kb_;
  PipelineConfig config_;
  common::ThreadPool* pool_;  ///< config_.pool or the shared pool.
  tracker::ShardedMobilityTracker tracker_;
  std::unique_ptr<PartitionedRecognizer> recognizer_;
  std::unique_ptr<mod::HermesArchiver> archiver_;
  Timestamp last_query_ = kInvalidTimestamp;
  /// Critical points not yet evicted from the window (awaiting archival).
  std::deque<tracker::CriticalPoint> window_criticals_;
  std::vector<tracker::CriticalPoint> all_criticals_;
  /// Slides staged ahead, oldest first. Mutated only by the owner thread;
  /// the elements' staging outputs are handed over via each slide's
  /// ready-flag handshake.
  std::deque<std::unique_ptr<StagedSlide>> staged_;
};

}  // namespace maritime::surveillance

#endif  // MARITIME_MARITIME_PIPELINE_H_
