# Empty compiler generated dependencies file for maritime_mod.
# This may be replaced when dependencies are built.
