#ifndef MARITIME_MOD_HERMES_H_
#define MARITIME_MOD_HERMES_H_

#include <deque>
#include <vector>

#include "mod/store.h"
#include "mod/trips.h"

namespace maritime::mod {

/// Wall-clock seconds spent in each offline phase (the stages of paper
/// Figure 10, excluding online tracking which is measured upstream).
struct ArchiveTimings {
  double staging_s = 0.0;
  double reconstruction_s = 0.0;
  double loading_s = 0.0;
  uint64_t batches = 0;
};

/// The offline archival path of Figure 1: a staging area on "disk"
/// receiving delta critical points evicted from the sliding window, periodic
/// reconstruction of trips between ports, and loading of the reconstructed
/// segments into the trajectory store. Stands in for Hermes MOD on
/// PostgreSQL; the phases and their interfaces mirror the paper's pipeline
/// so Figure 10 can be reproduced.
///
/// Information archived here deliberately lags the live window by ω, so no
/// trajectory portion is ever duplicated between the online (in-memory) and
/// offline (archived) sides (paper Section 3.2).
class HermesArchiver {
 public:
  /// `kb` provides port polygons; must outlive the archiver.
  explicit HermesArchiver(const surveillance::KnowledgeBase* kb);

  /// Phase "staging": appends a batch of delta critical points (those just
  /// evicted from the window) to the staging area.
  void StageBatch(const std::vector<tracker::CriticalPoint>& batch);

  /// Phase "reconstruction": drains the staging area through the trip
  /// builder. Returns the number of trips completed by this batch.
  size_t Reconstruct();

  /// Phase "loading": inserts the reconstructed trips into the store.
  /// Returns the number of trips loaded.
  size_t Load();

  /// Convenience: staging + reconstruction + loading of one batch.
  void ArchiveBatch(const std::vector<tracker::CriticalPoint>& batch);

  const TrajectoryStore& store() const { return store_; }
  const ArchiveTimings& timings() const { return timings_; }

  /// Critical points awaiting assignment to a trip: staged but not yet
  /// reconstructed, plus open segments of still-sailing vessels.
  uint64_t pending_points() const;

  /// Table 4 statistics over the current archive.
  TripStatistics Statistics() const;

  // --- checkpointing -------------------------------------------------------
  /// Serializes the whole archival path: open trip segments, the staging
  /// area, reconstructed trips awaiting Load(), the trajectory store, and
  /// the phase timings (format v1).
  void SaveTo(snapshot::Writer& w) const;
  /// Restores into an archiver over the same knowledge base. On error the
  /// archiver is left empty.
  Status RestoreFrom(snapshot::Reader& r);

 private:
  const surveillance::KnowledgeBase* kb_;
  TripBuilder builder_;
  std::deque<tracker::CriticalPoint> staging_;
  std::vector<Trip> reconstructed_;  ///< Awaiting Load().
  TrajectoryStore store_;
  ArchiveTimings timings_;
};

}  // namespace maritime::mod

#endif  // MARITIME_MOD_HERMES_H_
