#include "maritime/knowledge.h"

#include <algorithm>
#include <cmath>

namespace maritime::surveillance {

namespace {

/// Per-thread one-entry locality cache shared by all KnowledgeBase spatial
/// queries on that thread. The rule closures of the recognizer run
/// concurrently across keys, so the cache must not live in the (shared)
/// KnowledgeBase itself; a generation stamp keeps it safe to reuse across
/// different SpatialIndex instances on the same thread.
geo::SpatialIndex::Cache& TlsSpatialCache() {
  static thread_local geo::SpatialIndex::Cache cache;
  return cache;
}

/// Scratch id buffer for tiered queries whose result is not returned to the
/// caller (PortContaining, AnyAreaCloseTo): reusing it avoids an allocation
/// per call. Never held across calls into other KnowledgeBase methods.
std::vector<int32_t>& TlsIdScratch() {
  static thread_local std::vector<int32_t> ids;
  return ids;
}

bool FiniteVertices(const geo::Polygon& poly) {
  for (const geo::GeoPoint& v : poly.vertices()) {
    if (!std::isfinite(v.lon) || !std::isfinite(v.lat)) return false;
  }
  return true;
}

}  // namespace

std::string_view AreaKindName(AreaKind kind) {
  switch (kind) {
    case AreaKind::kProtected:
      return "protected";
    case AreaKind::kForbiddenFishing:
      return "forbidden_fishing";
    case AreaKind::kShallow:
      return "shallow";
    case AreaKind::kPort:
      return "port";
  }
  return "unknown";
}

std::string_view VesselTypeName(VesselType type) {
  switch (type) {
    case VesselType::kCargo:
      return "cargo";
    case VesselType::kTanker:
      return "tanker";
    case VesselType::kPassenger:
      return "passenger";
    case VesselType::kFishing:
      return "fishing";
    case VesselType::kPleasure:
      return "pleasure";
    case VesselType::kOther:
      return "other";
  }
  return "unknown";
}

std::string_view SpatialEngineName(SpatialEngine engine) {
  switch (engine) {
    case SpatialEngine::kBrute:
      return "brute";
    case SpatialEngine::kGrid:
      return "grid";
    case SpatialEngine::kTiered:
      return "tiered";
  }
  return "unknown";
}

KnowledgeBase::KnowledgeBase(double close_threshold_m, SpatialOptions spatial)
    : close_threshold_m_(close_threshold_m),
      spatial_options_(spatial),
      grid_(spatial.grid_cell_deg),
      spatial_(close_threshold_m,
               geo::SpatialIndex::Options{.cell_deg = spatial.tiered_cell_deg}) {
}

void KnowledgeBase::AddArea(AreaInfo area) {
  area_index_[area.id] = areas_.size();
  switch (spatial_options_.engine) {
    case SpatialEngine::kBrute:
      break;
    case SpatialEngine::kGrid: {
      if (!FiniteVertices(area.polygon)) {
        grid_unindexed_.push_back(area.id);
        break;
      }
      // The margins must cover the close threshold everywhere on the
      // expanded bbox: latitude degrees have fixed metric length, but
      // longitude degrees shrink by cos(lat), so the longitude margin is
      // derived from the worst-case |latitude| of the threshold-expanded
      // band rather than a fixed mid-latitude constant.
      const geo::BoundingBox& box = area.polygon.bbox();
      const double lat_margin = geo::CloseLatMarginDeg(close_threshold_m_);
      const double band_lat = std::min(
          90.0,
          std::max(std::abs(box.min_lat), std::abs(box.max_lat)) + lat_margin);
      const double lon_margin =
          geo::CloseLonMarginDeg(close_threshold_m_, band_lat);
      grid_.Insert(area.id, area.polygon, lon_margin, lat_margin);
      break;
    }
    case SpatialEngine::kTiered:
      spatial_.Insert(area.id, area.polygon);
      break;
  }
  areas_.push_back(std::move(area));
}

void KnowledgeBase::AddVessel(VesselInfo vessel) {
  vessels_[vessel.mmsi] = std::move(vessel);
}

VesselType VesselTypeFromAisCode(int code) {
  if (code == 30) return VesselType::kFishing;
  if (code == 36 || code == 37) return VesselType::kPleasure;
  if (code >= 60 && code <= 69) return VesselType::kPassenger;
  if (code >= 70 && code <= 79) return VesselType::kCargo;
  if (code >= 80 && code <= 89) return VesselType::kTanker;
  return VesselType::kOther;
}

void KnowledgeBase::UpsertVesselStatic(stream::Mmsi mmsi,
                                       const std::string& name,
                                       VesselType type, double draft_m) {
  VesselInfo& v = vessels_[mmsi];
  v.mmsi = mmsi;
  if (!name.empty()) v.name = name;
  v.type = type;
  if (type == VesselType::kFishing) v.fishing_gear = true;
  if (draft_m > 0.0) v.draft_m = draft_m;
}

const AreaInfo* KnowledgeBase::FindArea(int32_t id) const {
  const auto it = area_index_.find(id);
  return it == area_index_.end() ? nullptr : &areas_[it->second];
}

const VesselInfo* KnowledgeBase::FindVessel(stream::Mmsi mmsi) const {
  const auto it = vessels_.find(mmsi);
  return it == vessels_.end() ? nullptr : &it->second;
}

bool KnowledgeBase::Close(const geo::GeoPoint& p, int32_t area_id) const {
  if (spatial_options_.engine == SpatialEngine::kTiered) {
    return spatial_.Close(p, area_id, &TlsSpatialCache());
  }
  const AreaInfo* area = FindArea(area_id);
  if (area == nullptr) return false;
  return area->polygon.DistanceMeters(p) < close_threshold_m_;
}

std::vector<int32_t> KnowledgeBase::AreasCloseTo(const geo::GeoPoint& p) const {
  std::vector<int32_t> out;
  AreasCloseTo(p, &out);
  return out;
}

void KnowledgeBase::AreasCloseTo(const geo::GeoPoint& p,
                                 std::vector<int32_t>* out) const {
  out->clear();
  switch (spatial_options_.engine) {
    case SpatialEngine::kBrute:
      for (const AreaInfo& area : areas_) {
        if (area.polygon.DistanceMeters(p) < close_threshold_m_) {
          out->push_back(area.id);
        }
      }
      break;
    case SpatialEngine::kGrid:
      for (const int32_t id : grid_.Candidates(p)) {
        if (Close(p, id)) out->push_back(id);
      }
      for (const int32_t id : grid_unindexed_) {
        if (Close(p, id)) out->push_back(id);
      }
      break;
    case SpatialEngine::kTiered:
      spatial_.AreasCloseTo(p, out, &TlsSpatialCache());
      return;  // Already sorted by the index.
  }
  std::sort(out->begin(), out->end());
}

std::vector<int32_t> KnowledgeBase::AreasCloseTo(const geo::GeoPoint& p,
                                                 AreaKind kind) const {
  std::vector<int32_t> out;
  switch (spatial_options_.engine) {
    case SpatialEngine::kBrute:
      for (const AreaInfo& area : areas_) {
        if (area.kind == kind &&
            area.polygon.DistanceMeters(p) < close_threshold_m_) {
          out.push_back(area.id);
        }
      }
      break;
    case SpatialEngine::kGrid: {
      const auto check = [&](int32_t id) {
        const AreaInfo* area = FindArea(id);
        if (area != nullptr && area->kind == kind && Close(p, id)) {
          out.push_back(id);
        }
      };
      for (const int32_t id : grid_.Candidates(p)) check(id);
      for (const int32_t id : grid_unindexed_) check(id);
      break;
    }
    case SpatialEngine::kTiered: {
      spatial_.AreasCloseTo(p, &out, &TlsSpatialCache());
      std::erase_if(out, [&](int32_t id) {
        const AreaInfo* area = FindArea(id);
        return area == nullptr || area->kind != kind;
      });
      return out;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool KnowledgeBase::AnyAreaCloseTo(const geo::GeoPoint& p,
                                   AreaKind kind) const {
  switch (spatial_options_.engine) {
    case SpatialEngine::kBrute:
      for (const AreaInfo& area : areas_) {
        if (area.kind == kind &&
            area.polygon.DistanceMeters(p) < close_threshold_m_) {
          return true;
        }
      }
      return false;
    case SpatialEngine::kGrid: {
      const auto check = [&](int32_t id) {
        const AreaInfo* area = FindArea(id);
        return area != nullptr && area->kind == kind && Close(p, id);
      };
      for (const int32_t id : grid_.Candidates(p)) {
        if (check(id)) return true;
      }
      for (const int32_t id : grid_unindexed_) {
        if (check(id)) return true;
      }
      return false;
    }
    case SpatialEngine::kTiered: {
      std::vector<int32_t>& close = TlsIdScratch();
      spatial_.AreasCloseTo(p, &close, &TlsSpatialCache());
      for (const int32_t id : close) {
        const AreaInfo* area = FindArea(id);
        if (area != nullptr && area->kind == kind) return true;
      }
      return false;
    }
  }
  return false;
}

std::vector<std::vector<int32_t>> KnowledgeBase::AreasCloseToAll(
    std::span<const geo::GeoPoint> pts) const {
  std::vector<std::vector<int32_t>> out(pts.size());
  if (spatial_options_.engine == SpatialEngine::kTiered) {
    // One batch-local cache: consecutive points in a batch come from the
    // same vessel track and almost always share a cell.
    geo::SpatialIndex::Cache cache;
    for (size_t i = 0; i < pts.size(); ++i) {
      spatial_.AreasCloseTo(pts[i], &out[i], &cache);
    }
  } else {
    for (size_t i = 0; i < pts.size(); ++i) out[i] = AreasCloseTo(pts[i]);
  }
  return out;
}

bool KnowledgeBase::InsideArea(const geo::GeoPoint& p, int32_t area_id) const {
  if (spatial_options_.engine == SpatialEngine::kTiered) {
    return spatial_.Contains(p, area_id, &TlsSpatialCache());
  }
  const AreaInfo* area = FindArea(area_id);
  return area != nullptr && area->polygon.Contains(p);
}

bool KnowledgeBase::IsFishing(stream::Mmsi mmsi) const {
  const VesselInfo* v = FindVessel(mmsi);
  if (v == nullptr) return false;
  return v->fishing_gear || v->type == VesselType::kFishing;
}

bool KnowledgeBase::IsShallowFor(int32_t area_id, stream::Mmsi mmsi) const {
  const AreaInfo* area = FindArea(area_id);
  if (area == nullptr || area->kind != AreaKind::kShallow) return false;
  const VesselInfo* v = FindVessel(mmsi);
  // Unknown vessels get a conservative default draft so alerts still fire.
  const double draft = v != nullptr ? v->draft_m : 3.0;
  return area->depth_m < draft + kUnderKeelClearanceM;
}

const AreaInfo* KnowledgeBase::PortContaining(const geo::GeoPoint& p) const {
  // All engines return the lowest-id containing port so trip segmentation is
  // deterministic even when port polygons overlap.
  switch (spatial_options_.engine) {
    case SpatialEngine::kBrute: {
      const AreaInfo* best = nullptr;
      for (const AreaInfo& area : areas_) {
        if (area.kind == AreaKind::kPort && area.polygon.Contains(p) &&
            (best == nullptr || area.id < best->id)) {
          best = &area;
        }
      }
      return best;
    }
    case SpatialEngine::kGrid: {
      const AreaInfo* best = nullptr;
      const auto check = [&](int32_t id) {
        const AreaInfo* area = FindArea(id);
        if (area != nullptr && area->kind == AreaKind::kPort &&
            area->polygon.Contains(p) &&
            (best == nullptr || area->id < best->id)) {
          best = area;
        }
      };
      for (const int32_t id : grid_.Candidates(p)) check(id);
      for (const int32_t id : grid_unindexed_) check(id);
      return best;
    }
    case SpatialEngine::kTiered: {
      std::vector<int32_t>& inside = TlsIdScratch();
      spatial_.AreasContaining(p, &inside, &TlsSpatialCache());
      for (const int32_t id : inside) {  // Sorted ascending: first port wins.
        const AreaInfo* area = FindArea(id);
        if (area != nullptr && area->kind == AreaKind::kPort) return area;
      }
      return nullptr;
    }
  }
  return nullptr;
}

KnowledgeBase KnowledgeBase::Restricted(
    const std::vector<int32_t>& area_ids) const {
  KnowledgeBase out(close_threshold_m_, spatial_options_);
  for (const int32_t id : area_ids) {
    const AreaInfo* area = FindArea(id);
    if (area != nullptr) out.AddArea(*area);
  }
  for (const auto& [mmsi, vessel] : vessels_) out.AddVessel(vessel);
  return out;
}

}  // namespace maritime::surveillance
