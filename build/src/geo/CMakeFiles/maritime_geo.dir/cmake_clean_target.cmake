file(REMOVE_RECURSE
  "libmaritime_geo.a"
)
