#include <gtest/gtest.h>

#include "maritime/recognizer.h"

namespace maritime::surveillance {
namespace {

const geo::GeoPoint kPortCenter{26.5, 39.5};
const geo::GeoPoint kOpenSea{24.5, 37.5};
constexpr stream::Mmsi kShip = 4242;

KnowledgeBase MakeKb() {
  KnowledgeBase kb(1000.0);
  AreaInfo port;
  port.id = 1000;
  port.name = "port";
  port.kind = AreaKind::kPort;
  port.polygon = geo::Polygon::RegularPolygon(kPortCenter, 700.0, 10);
  kb.AddArea(port);
  VesselInfo v;
  v.mmsi = kShip;
  v.type = VesselType::kCargo;
  kb.AddVessel(v);
  return kb;
}

tracker::CriticalPoint Cp(geo::GeoPoint pos, Timestamp tau, uint32_t flags) {
  tracker::CriticalPoint cp;
  cp.mmsi = kShip;
  cp.pos = pos;
  cp.tau = tau;
  cp.flags = flags;
  return cp;
}

RecognizerConfig Config(bool facts) {
  RecognizerConfig cfg;
  cfg.window = stream::WindowSpec{2 * kHour, kHour};
  cfg.ce.use_spatial_facts = facts;
  return cfg;
}

class AdriftTest : public ::testing::TestWithParam<bool> {
 protected:
  AdriftTest() : kb_(MakeKb()), rec_(&kb_, Config(GetParam())) {}

  const rtec::RecognizedFluent* FindAdrift(
      const rtec::RecognitionResult& r) const {
    for (const auto& f : r.fluents) {
      if (f.fluent == rec_.schema().adrift &&
          f.key == VesselTerm(kShip)) {
        return &f;
      }
    }
    return nullptr;
  }

  KnowledgeBase kb_;
  CERecognizer rec_;
};

TEST_P(AdriftTest, StopInOpenWaterRaisesAdrift) {
  rec_.Feed(Cp(kOpenSea, 600, tracker::kStopStart));
  rec_.Feed(Cp(kOpenSea, 4800, tracker::kStopEnd));
  const auto r = rec_.Recognize(7200);
  const auto* f = FindAdrift(r);
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->intervals.size(), 1u);
  EXPECT_EQ(f->intervals[0], (rtec::Interval{600, 4800}));
}

TEST_P(AdriftTest, StopInPortIsNotAdrift) {
  rec_.Feed(Cp(kPortCenter, 600, tracker::kStopStart));
  const auto r = rec_.Recognize(7200);
  EXPECT_EQ(FindAdrift(r), nullptr);
}

TEST_P(AdriftTest, OngoingEpisodeReportedOpen) {
  rec_.Feed(Cp(kOpenSea, 600, tracker::kStopStart));
  const auto r = rec_.Recognize(7200);
  const auto* f = FindAdrift(r);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->intervals[0], (rtec::Interval{600, 7200}));
}

TEST_P(AdriftTest, DescribeLabelsVessel) {
  rec_.Feed(Cp(kOpenSea, 600, tracker::kStopStart));
  const auto r = rec_.Recognize(7200);
  const auto* f = FindAdrift(r);
  ASSERT_NE(f, nullptr);
  const std::string text = rec_.Describe(*f);
  EXPECT_NE(text.find("adrift"), std::string::npos);
  EXPECT_NE(text.find("vessel=4242"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(SpatialModes, AdriftTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "PrecomputedFacts"
                                             : "OnDemandReasoning";
                         });

TEST(AdriftDisabledTest, FlagSuppressesExtensionCe) {
  KnowledgeBase kb = MakeKb();
  RecognizerConfig cfg = Config(false);
  cfg.ce.enable_adrift = false;
  CERecognizer rec(&kb, cfg);
  rec.Feed(Cp(kOpenSea, 600, tracker::kStopStart));
  const auto r = rec.Recognize(7200);
  for (const auto& f : r.fluents) {
    EXPECT_NE(f.fluent, rec.schema().adrift);
  }
}

}  // namespace
}  // namespace maritime::surveillance
